//! Persistent, content-addressed result store for sweep jobs.
//!
//! Every simulation point in this repository is fully deterministic: the
//! statistics of a [`crate::Job`] are a pure function of its configuration.
//! This module exploits that by caching [`dkip_model::SimStats`] on disk
//! under a key derived from the *complete* job configuration (machine +
//! memory hierarchy + workload + seed + budget + sample/clock knobs, see
//! [`crate::Job::key_text`]) salted with a code-version stamp, so figure
//! binaries, golden sweeps and the `dkip-sim serve` service only compute
//! what changed.
//!
//! # Key derivation and invalidation contract
//!
//! The cache key is `fnv1a_128(salt_header + job key text)` where the salt
//! header folds in:
//!
//! * the store format version ([`STORE_VERSION`]),
//! * [`RESULTS_EPOCH`] — a manually bumped counter for "results changed
//!   without a config-struct change" events,
//! * the `dkip-sim` crate version (`CARGO_PKG_VERSION`),
//! * the free-form [`CACHE_SALT_ENV`] environment variable (empty when
//!   unset), which tests and operators use to force cold runs.
//!
//! The job key text itself is produced by exhaustive destructuring
//! ([`dkip_model::StableKey`]): adding a field to any config struct without
//! extending its key is a compile error, so silently stale hits after a
//! config change are impossible. Anyone changing simulator behaviour
//! without touching a config struct must bump [`RESULTS_EPOCH`].
//!
//! # Integrity
//!
//! Entries are written atomically (temp file + rename) and verified
//! end-to-end on load: the header, embedded key and statistics document are
//! parsed back through [`SimStats::from_kv`] and the re-serialisation is
//! byte-compared against the stored text. Any mismatch — truncation,
//! corruption, format drift — logs a warning, deletes the entry
//! best-effort, and reports a miss so the job is recomputed and rewritten.
//! A cache hit is therefore byte-identical to a recompute, by construction.
//!
//! # Write resilience
//!
//! The store is an accelerator, never a correctness dependency: a write
//! that fails transiently (`ENOSPC`, a flaky network filesystem) is
//! retried a few times with capped backoff ([`WRITE_ATTEMPTS`]), and a
//! store that keeps failing — a cache directory that turned read-only
//! mid-sweep — trips a degraded flag: one stderr notice, then every later
//! insert becomes a silent no-op and the sweep keeps computing uncached.
//! Reads are never retried; an unreadable entry is just a miss, and the
//! job recomputes. The [`crate::chaos`] fault points `store.write` and
//! `store.read` inject exactly these failures so `make chaos-check` can
//! prove the degraded paths still produce byte-identical results.

use std::collections::BTreeSet;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::chaos::{self, FaultPoint};
use dkip_model::{key_digest, SimStats};

/// Environment variable selecting the cache directory (empty = disabled).
pub const CACHE_ENV: &str = "DKIP_CACHE";

/// Environment variable mixed verbatim into the cache salt. Setting it to a
/// fresh value invalidates every existing entry without touching the store
/// directory — the perturbation knob `make cache-check` uses.
pub const CACHE_SALT_ENV: &str = "DKIP_CACHE_SALT";

/// Manually bumped whenever simulated results change without any config
/// struct changing shape (e.g. a timing-model bug fix). Part of the cache
/// salt, so bumping it invalidates every cached result.
pub const RESULTS_EPOCH: u32 = 1;

/// On-disk entry format version (first line of every entry file).
pub const STORE_VERSION: &str = "dkip-store v1";

/// How many times [`ResultStore::insert`] attempts a write before giving
/// up and degrading the store to uncached operation. Attempts after the
/// first back off 5 ms → 20 ms → … (×4 per attempt, capped at 50 ms):
/// long enough to ride out a transient hiccup, short enough that a dead
/// filesystem costs each worker well under a tenth of a second, once.
pub const WRITE_ATTEMPTS: u32 = 3;

/// A verified cache entry: everything needed to reconstruct a
/// [`crate::JobResult`] without re-simulating.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredResult {
    /// The simulated statistics, parsed back from the stored document.
    pub stats: SimStats,
    /// Instructions the original run covered (`JobResult::covered`).
    pub covered: u64,
}

/// A content-addressed result store rooted at one directory.
///
/// Cloning is cheap and shares the hit/miss counters, so a figure binary
/// that runs several sweeps through clones of one store still reports
/// per-process totals (see [`ResultStore::hits`]).
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: PathBuf,
    salt: String,
    hits: Arc<AtomicU64>,
    misses: Arc<AtomicU64>,
    write_errors: Arc<AtomicU64>,
    degraded: Arc<AtomicBool>,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the directory cannot be created — callers
    /// surface this like a malformed `threads=` value (exit 2 / panic), per
    /// the strict-knob contract.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<ResultStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ResultStore {
            root,
            salt: Self::salt_header(),
            hits: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
            write_errors: Arc::new(AtomicU64::new(0)),
            degraded: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Opens the store named by the `DKIP_CACHE` environment variable.
    /// Unset or empty/whitespace means "no store" (like `DKIP_SAMPLE`).
    ///
    /// # Panics
    ///
    /// Panics when the variable names a directory that cannot be created —
    /// an explicitly requested cache must not be dropped silently.
    #[must_use]
    pub fn from_env() -> Option<ResultStore> {
        let value = std::env::var(CACHE_ENV).ok()?;
        if value.trim().is_empty() {
            return None;
        }
        match Self::open(value.trim()) {
            Ok(store) => Some(store),
            Err(e) => panic!("invalid {CACHE_ENV}={value:?}: cannot open store: {e}"),
        }
    }

    /// The code-version salt prefixed to every key text before hashing.
    fn salt_header() -> String {
        let extra = std::env::var(CACHE_SALT_ENV).unwrap_or_default();
        format!(
            "{STORE_VERSION}\nepoch={RESULTS_EPOCH}\ncrate={}\nsalt={extra}\n",
            env!("CARGO_PKG_VERSION"),
        )
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Derives the cache key (32 lowercase hex chars) for a job key text.
    #[must_use]
    pub fn key_for_text(&self, key_text: &str) -> String {
        key_digest(&format!("{}{key_text}", self.salt))
    }

    /// Cache hits recorded through this store (shared across clones).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses recorded through this store (shared across clones).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Writes that failed after exhausting every retry (shared across
    /// clones). At most 1 in practice: the first exhausted write trips the
    /// degraded flag and later inserts no longer attempt the disk.
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Whether the store has degraded to uncached operation (a write
    /// exhausted its retries; see the module docs). Lookups still work —
    /// entries written before the failure keep serving hits.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.root.join(&key[..2]).join(format!("{key}.entry"))
    }

    /// Looks up a key, counting a hit or miss. Corrupted, truncated or
    /// stale-format entries are logged, removed best-effort and reported as
    /// misses — the caller recomputes and rewrites them.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<StoredResult> {
        if chaos::should_fire(FaultPoint::StoreRead) {
            // An injected unreadable entry: a miss, exactly like the real
            // read error below — the caller recomputes.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match Self::parse_entry(key, &text) {
            Ok(stored) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stored)
            }
            Err(why) => {
                eprintln!(
                    "# dkip-store: discarding corrupt entry {}: {why}",
                    path.display()
                );
                let _ = fs::remove_file(&path);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Parses and fully verifies one entry document.
    fn parse_entry(key: &str, text: &str) -> Result<StoredResult, String> {
        let mut lines = text.lines();
        if lines.next() != Some(STORE_VERSION) {
            return Err(format!("bad header (want {STORE_VERSION:?})"));
        }
        let key_line = lines.next().unwrap_or_default();
        let stored_key = key_line
            .strip_prefix("key=")
            .ok_or_else(|| format!("bad key line {key_line:?}"))?;
        if stored_key != key {
            return Err(format!("key mismatch: entry says {stored_key}"));
        }
        let covered_line = lines.next().unwrap_or_default();
        let covered = covered_line
            .strip_prefix("covered=")
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("bad covered line {covered_line:?}"))?;
        let mut next = lines.next().unwrap_or_default();
        let mut hist_sum = 0u128;
        if let Some(sum) = next.strip_prefix("hist_sum=") {
            hist_sum = sum
                .parse::<u128>()
                .map_err(|_| format!("bad hist_sum value {sum:?}"))?;
            next = lines.next().unwrap_or_default();
        }
        if next != "stats" {
            return Err(format!("expected 'stats' section, got {next:?}"));
        }
        let mut stats_text = String::new();
        let mut terminated = false;
        for line in lines {
            if line == "end" {
                terminated = true;
                break;
            }
            stats_text.push_str(line);
            stats_text.push('\n');
        }
        if !terminated {
            return Err("truncated entry (no 'end' terminator)".to_owned());
        }
        let stats = SimStats::from_kv(&stats_text, hist_sum)?;
        if stats.to_kv() != stats_text {
            return Err("stats document is not byte-stable".to_owned());
        }
        Ok(StoredResult { stats, covered })
    }

    /// Inserts a result under `key`, atomically (temp file + rename, safe
    /// against concurrent writers of the same key), retrying transient
    /// failures with capped backoff (see [`WRITE_ATTEMPTS`]).
    ///
    /// Once a write has exhausted its retries the store flips to degraded
    /// mode: the failure is logged once, [`ResultStore::write_errors`] is
    /// bumped, and every later insert returns `Ok` without touching the
    /// disk — the sweep keeps computing, just uncached. A failed attempt
    /// never leaves a partial entry behind: the document goes to a temp
    /// file first and only an already-synced file is renamed into place.
    ///
    /// # Errors
    ///
    /// Returns the final I/O error of the attempt that tripped degraded
    /// mode. Callers may ignore it — a write failure degrades caching,
    /// never correctness.
    pub fn insert(&self, key: &str, stats: &SimStats, covered: u64) -> io::Result<()> {
        if self.degraded() {
            return Ok(());
        }
        let mut delay = Duration::from_millis(5);
        let mut attempt = 0;
        loop {
            match self.try_insert(key, stats, covered) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    attempt += 1;
                    if attempt >= WRITE_ATTEMPTS {
                        self.write_errors.fetch_add(1, Ordering::Relaxed);
                        if !self.degraded.swap(true, Ordering::AcqRel) {
                            eprintln!(
                                "# dkip-store: cannot write entry {key} in {} after \
                                 {WRITE_ATTEMPTS} attempts: {e} — continuing uncached",
                                self.root.display()
                            );
                        }
                        return Err(e);
                    }
                    std::thread::sleep(delay);
                    delay = (delay * 4).min(Duration::from_millis(50));
                }
            }
        }
    }

    /// One write attempt: the unretried body of [`ResultStore::insert`].
    fn try_insert(&self, key: &str, stats: &SimStats, covered: u64) -> io::Result<()> {
        if let Some(injected) = chaos::fail_io(FaultPoint::StoreWrite) {
            return Err(injected);
        }
        let path = self.entry_path(key);
        fs::create_dir_all(path.parent().expect("entry path has a shard dir"))?;
        let hist_sum = stats
            .issue_latency
            .as_ref()
            .map(|hist| format!("hist_sum={}\n", hist.sample_sum()))
            .unwrap_or_default();
        let body = format!(
            "{STORE_VERSION}\nkey={key}\ncovered={covered}\n{hist_sum}stats\n{}end\n",
            stats.to_kv()
        );
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let written = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(body.as_bytes())?;
            file.sync_all()?;
            fs::rename(&tmp, &path)
        })();
        if written.is_err() {
            // Never leave a torn temp file for a later attempt (or a
            // concurrent writer with the same pid path) to trip over.
            let _ = fs::remove_file(&tmp);
        }
        written
    }
}

/// One shard of a sharded sweep: `parse("I/N")` selects the jobs whose
/// index is congruent to `I` modulo `N` (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// 0-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards, `> 0`.
    pub count: usize,
}

impl ShardSpec {
    /// Parses `"I/N"` with `0 <= I < N` (whitespace-tolerant).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything else.
    pub fn parse(value: &str) -> Result<ShardSpec, String> {
        let bad = || format!("invalid shard {value:?}: expected I/N with 0 <= I < N");
        let (index, count) = value.trim().split_once('/').ok_or_else(bad)?;
        let index = index.trim().parse::<usize>().map_err(|_| bad())?;
        let count = count.trim().parse::<usize>().map_err(|_| bad())?;
        if count == 0 || index >= count {
            return Err(bad());
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether job `idx` of the full sweep belongs to this shard.
    #[must_use]
    pub fn owns(&self, idx: usize) -> bool {
        idx % self.count == self.index
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Append-only per-shard progress file, so an interrupted sweep resumes
/// from where it stopped instead of restarting.
///
/// The file holds one `done <idx>` line per completed job; anything
/// unparseable (a torn write from a kill mid-append) is skipped on load.
/// The result store remains the source of truth for the *data* — completed
/// jobs of a restarted sweep are cache hits either way — the checkpoint
/// only records which indices this shard already reported.
#[derive(Debug)]
pub struct SweepCheckpoint {
    path: PathBuf,
    done: BTreeSet<usize>,
}

impl SweepCheckpoint {
    /// Opens (or creates) the progress file for `sweep` shard `shard` under
    /// `<store root>/progress/`, loading any previously recorded progress.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the progress directory cannot be created.
    pub fn open(store: &ResultStore, sweep: &str, shard: ShardSpec) -> io::Result<SweepCheckpoint> {
        let dir = store.root().join("progress");
        fs::create_dir_all(&dir)?;
        let sanitized: String = sweep
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!(
            "{sanitized}.{}-of-{}.progress",
            shard.index, shard.count
        ));
        let mut done = BTreeSet::new();
        if let Ok(text) = fs::read_to_string(&path) {
            for line in text.lines() {
                if let Some(idx) = line.strip_prefix("done ").and_then(|v| v.parse().ok()) {
                    done.insert(idx);
                }
            }
        }
        Ok(SweepCheckpoint { path, done })
    }

    /// Whether job `idx` was already recorded as complete.
    #[must_use]
    pub fn is_done(&self, idx: usize) -> bool {
        self.done.contains(&idx)
    }

    /// How many jobs this shard has recorded as complete.
    #[must_use]
    pub fn len(&self) -> usize {
        self.done.len()
    }

    /// Whether no progress has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.done.is_empty()
    }

    /// Records job `idx` as complete (append + flush; idempotent).
    pub fn mark(&mut self, idx: usize) {
        if !self.done.insert(idx) {
            return;
        }
        let appended = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut file| {
                file.write_all(format!("done {idx}\n").as_bytes())?;
                file.sync_all()
            });
        if let Err(e) = appended {
            eprintln!(
                "# dkip-store: cannot record progress in {}: {e}",
                self.path.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dkip-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stats() -> SimStats {
        SimStats {
            cycles: 100,
            committed: 250,
            fetched: 260,
            ..SimStats::default()
        }
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let store = ResultStore::open(scratch("roundtrip")).unwrap();
        let key = store.key_for_text("machine=test\n");
        assert_eq!(key.len(), 32);
        assert!(store.lookup(&key).is_none());
        let stats = sample_stats();
        store.insert(&key, &stats, 250).unwrap();
        let stored = store.lookup(&key).expect("entry just written");
        assert_eq!(stored.stats.to_kv(), stats.to_kv());
        assert_eq!(stored.covered, 250);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn histogram_sum_survives_the_store() {
        let mut hist = dkip_model::Histogram::new(10, 4);
        hist.record(7);
        hist.record(23);
        hist.record(500);
        let sum = hist.sample_sum();
        let stats = SimStats {
            cycles: 9,
            committed: 3,
            issue_latency: Some(hist),
            ..SimStats::default()
        };
        let store = ResultStore::open(scratch("hist")).unwrap();
        let key = store.key_for_text("k");
        store.insert(&key, &stats, 3).unwrap();
        let stored = store.lookup(&key).unwrap();
        assert_eq!(stored.stats.to_kv(), stats.to_kv());
        assert_eq!(stored.stats.issue_latency.unwrap().sample_sum(), sum);
    }

    #[test]
    fn corrupt_entries_are_discarded_and_rewritten() {
        let store = ResultStore::open(scratch("corrupt")).unwrap();
        let key = store.key_for_text("k");
        let stats = sample_stats();
        store.insert(&key, &stats, 250).unwrap();
        let path = store.entry_path(&key);
        // Truncate mid-document: must become a miss, and the file goes away.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(store.lookup(&key).is_none());
        assert!(!path.exists(), "corrupt entry removed");
        // Tampered counter: the internal cross-checks reject it.
        store.insert(&key, &stats, 250).unwrap();
        let tampered = fs::read_to_string(&path)
            .unwrap()
            .replace("committed=250", "committed=251");
        fs::write(&path, tampered).unwrap();
        assert!(store.lookup(&key).is_none());
        // Recompute path: rewriting restores service.
        store.insert(&key, &stats, 250).unwrap();
        assert_eq!(store.lookup(&key).unwrap().stats.to_kv(), stats.to_kv());
    }

    #[test]
    fn keys_depend_on_the_text_and_clones_share_counters() {
        let store = ResultStore::open(scratch("keys")).unwrap();
        assert_ne!(store.key_for_text("a"), store.key_for_text("b"));
        let clone = store.clone();
        let _ = clone.lookup(&store.key_for_text("a"));
        assert_eq!(store.misses(), 1, "clones share the miss counter");
    }

    #[test]
    fn shard_spec_parses_strictly() {
        assert_eq!(
            ShardSpec::parse("1/4"),
            Ok(ShardSpec { index: 1, count: 4 })
        );
        assert_eq!(
            ShardSpec::parse(" 0/1 "),
            Ok(ShardSpec { index: 0, count: 1 })
        );
        assert!(ShardSpec::parse("4/4").is_err());
        assert!(ShardSpec::parse("0/0").is_err());
        assert!(ShardSpec::parse("1").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
        let shard = ShardSpec::parse("2/3").unwrap();
        let owned: Vec<usize> = (0..9).filter(|&i| shard.owns(i)).collect();
        assert_eq!(owned, vec![2, 5, 8]);
        assert_eq!(shard.to_string(), "2/3");
    }

    #[test]
    fn checkpoints_persist_across_reopens_and_skip_torn_lines() {
        let store = ResultStore::open(scratch("ckpt")).unwrap();
        let shard = ShardSpec { index: 0, count: 1 };
        let mut ckpt = SweepCheckpoint::open(&store, "golden all", shard).unwrap();
        assert!(ckpt.is_empty());
        ckpt.mark(0);
        ckpt.mark(2);
        ckpt.mark(2); // idempotent
        drop(ckpt);
        // Simulate a torn final append.
        let path = store
            .root()
            .join("progress")
            .join("golden_all.0-of-1.progress");
        let mut text = fs::read_to_string(&path).unwrap();
        text.push_str("done 7"); // no trailing newline — parses fine
        text.push_str("\ndone "); // torn line — skipped
        fs::write(&path, text).unwrap();
        let reopened = SweepCheckpoint::open(&store, "golden all", shard).unwrap();
        assert_eq!(reopened.len(), 3);
        assert!(reopened.is_done(0));
        assert!(!reopened.is_done(1));
        assert!(reopened.is_done(2));
        assert!(reopened.is_done(7));
    }
}
