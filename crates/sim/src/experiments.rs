//! One driver per table/figure of the paper's evaluation.
//!
//! Every driver takes the benchmark list and the per-benchmark instruction
//! budget as parameters so that the same code serves quick smoke tests,
//! the Criterion benches and full regeneration runs (see `EXPERIMENTS.md`).
//!
//! Since PR 2 every sweep driver also takes a [`SweepRunner`] and expands
//! its loops into an explicit [`Job`] list that fans out over the runner's
//! worker pool. Results come back in job order, so the figures are
//! byte-identical for every thread count; `SweepRunner::serial()` recovers
//! the old strictly serial behaviour.

use crate::report::{Figure, Series};
use crate::runner::{mean_ipc_by_label, Job, Machine, SweepRunner};
use crate::workload::Workload;
use dkip_model::config::{
    BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig, SchedPolicy,
};
use dkip_model::Histogram;
use dkip_riscv::{Kernel, KernelRun};
use dkip_trace::{Benchmark, Suite};

/// Default random seed used by every experiment.
pub const SEED: u64 = 1;

/// Default instruction budget for the RISC-V kernel figure: generous enough
/// that every shipped kernel at its default size runs to completion (the
/// kernels halt after a few thousand to a few tens of thousands of dynamic
/// instructions).
pub const RISCV_BUDGET: u64 = 200_000;

/// Table 1: the six memory-subsystem configurations.
#[must_use]
pub fn table1() -> Figure {
    let mut fig = Figure::new(
        "Table 1: configurations for quantifying the effect of the memory wall",
        "config",
        "latency (cycles)",
    );
    let mut l1 = Series::new("L1 access");
    let mut l2 = Series::new("L2 access");
    let mut mem = Series::new("memory access");
    for cfg in MemoryHierarchyConfig::table1_presets() {
        l1.push(cfg.name.clone(), cfg.l1_latency as f64);
        l2.push(
            cfg.name.clone(),
            if cfg.l2_perfect || cfg.l2_size.is_some() {
                cfg.l2_latency as f64
            } else {
                f64::NAN
            },
        );
        mem.push(
            cfg.name.clone(),
            if cfg.l2_perfect {
                f64::NAN
            } else {
                cfg.memory_latency as f64
            },
        );
    }
    fig.series = vec![l1, l2, mem];
    fig
}

/// Accumulates a mean-IPC sweep: one figure point per `point` call, one job
/// per benchmark behind it.
///
/// The builder records the `(series, x)` coordinates alongside the jobs, so
/// the sweep is walked exactly once — [`Self::into_series`] reassembles the
/// figure from the per-point means without re-running the driver's loops.
/// Points must be added series-major (all points of one series
/// contiguously), which is the natural loop order of every driver.
struct SweepBuilder {
    jobs: Vec<Job>,
    points: Vec<(String, String)>,
}

impl SweepBuilder {
    fn new() -> Self {
        SweepBuilder {
            jobs: Vec::new(),
            points: Vec::new(),
        }
    }

    /// Adds the figure point `(series, x)`, averaging over `workloads`.
    fn point_workloads(
        &mut self,
        series: impl Into<String>,
        x: impl Into<String>,
        machine: &Machine,
        mem: &MemoryHierarchyConfig,
        workloads: &[Workload],
        budget: u64,
    ) {
        let series = series.into();
        let x = x.into();
        let label = format!("{series}|{x}");
        for &workload in workloads {
            self.jobs.push(Job::new(
                label.clone(),
                machine.clone(),
                mem.clone(),
                workload,
                budget,
            ));
        }
        self.points.push((series, x));
    }

    /// Adds the figure point `(series, x)`, averaging over `benchmarks`.
    fn point(
        &mut self,
        series: impl Into<String>,
        x: impl Into<String>,
        machine: &Machine,
        mem: &MemoryHierarchyConfig,
        benchmarks: &[Benchmark],
        budget: u64,
    ) {
        let workloads: Vec<Workload> = benchmarks.iter().map(|&b| Workload::from(b)).collect();
        self.point_workloads(series, x, machine, mem, &workloads, budget);
    }

    /// Runs the sweep and folds the per-point means into figure series.
    ///
    /// Points are matched to means by label, so degenerate sweeps keep the
    /// pre-runner semantics: an empty benchmark list yields 0.0 (as
    /// `MeanIpc::mean` does) and duplicate coordinates yield duplicate
    /// points rather than a panic.
    fn into_series(self, runner: &SweepRunner) -> Vec<Series> {
        let means = mean_ipc_by_label(&runner.run(&self.jobs));
        let mut series_list: Vec<Series> = Vec::new();
        for (series, x) in self.points {
            let label = format!("{series}|{x}");
            let ipc = means
                .iter()
                .find(|(l, _)| *l == label)
                .map_or(0.0, |&(_, ipc)| ipc);
            if series_list
                .last()
                .map(|s| s.label != series)
                .unwrap_or(true)
            {
                series_list.push(Series::new(series));
            }
            series_list.last_mut().expect("just pushed").push(x, ipc);
        }
        series_list
    }
}

/// Figures 1 and 2: average IPC versus instruction-window size for the six
/// Table 1 memory subsystems, on an idealised out-of-order core.
#[must_use]
pub fn figure_window_scaling(
    suite: Suite,
    benchmarks: &[Benchmark],
    windows: &[usize],
    budget: u64,
    runner: &SweepRunner,
) -> Figure {
    let number = if suite == Suite::Int { 1 } else { 2 };
    let mut fig = Figure::new(
        format!(
            "Figure {number}: effect of the memory subsystem on {}",
            suite.label()
        ),
        "window",
        "average IPC (arith. mean)",
    );
    let mut sweep = SweepBuilder::new();
    for mem_cfg in MemoryHierarchyConfig::table1_presets() {
        for &window in windows {
            let machine = Machine::Baseline(BaselineConfig::idealized(window));
            sweep.point(
                &mem_cfg.name,
                window.to_string(),
                &machine,
                &mem_cfg,
                benchmarks,
                budget,
            );
        }
    }
    fig.series = sweep.into_series(runner);
    fig
}

/// Figure 3: the decode→issue distance distribution on an effectively
/// unbounded processor with 400-cycle memory (SpecFP).
#[must_use]
pub fn figure3_issue_histogram(
    benchmarks: &[Benchmark],
    budget: u64,
    runner: &SweepRunner,
) -> Histogram {
    let mut merged = Histogram::new(20, 2000);
    let cfg = BaselineConfig::unbounded();
    let mem = MemoryHierarchyConfig::mem_400();
    let jobs: Vec<Job> = benchmarks
        .iter()
        .map(|&bench| {
            Job::new(
                bench.name(),
                Machine::Baseline(cfg.clone()),
                mem.clone(),
                bench,
                budget,
            )
        })
        .collect();
    for stats in runner.run_stats(&jobs) {
        if let Some(hist) = stats.issue_latency {
            merged.merge(&hist);
        }
    }
    merged
}

/// Figure 9: IPC of R10-64, R10-256, KILO-1024 and D-KIP-2048 on both
/// suites.
#[must_use]
pub fn figure9_comparison(
    int_benchmarks: &[Benchmark],
    fp_benchmarks: &[Benchmark],
    budget: u64,
    runner: &SweepRunner,
) -> Figure {
    let mut fig = Figure::new(
        "Figure 9: performance of the D-KIP compared to baselines and a traditional KILO processor",
        "suite",
        "average IPC (arith. mean)",
    );
    let mem = MemoryHierarchyConfig::paper_default();
    let suites: [(&str, &[Benchmark]); 2] =
        [("SpecINT", int_benchmarks), ("SpecFP", fp_benchmarks)];
    let machines: [(&str, Machine); 4] = [
        ("R10-64", Machine::Baseline(BaselineConfig::r10_64())),
        ("R10-256", Machine::Baseline(BaselineConfig::r10_256())),
        ("KILO-1024", Machine::Kilo(KiloConfig::kilo_1024())),
        ("DKIP-2048", Machine::Dkip(DkipConfig::paper_default())),
    ];

    let mut sweep = SweepBuilder::new();
    for (machine_label, machine) in &machines {
        for (suite_label, benches) in suites {
            sweep.point(*machine_label, suite_label, machine, &mem, benches, budget);
        }
    }
    fig.series = sweep.into_series(runner);
    fig
}

/// The Cache Processor configurations swept on the x-axis of Figure 10.
#[must_use]
pub fn figure10_cp_points() -> Vec<(String, SchedPolicy, usize)> {
    vec![
        ("INO".to_owned(), SchedPolicy::InOrder, 40),
        ("OOO-20".to_owned(), SchedPolicy::OutOfOrder, 20),
        ("OOO-40".to_owned(), SchedPolicy::OutOfOrder, 40),
        ("OOO-60".to_owned(), SchedPolicy::OutOfOrder, 60),
        ("OOO-80".to_owned(), SchedPolicy::OutOfOrder, 80),
    ]
}

/// Figure 10: impact of the scheduling policy and queue sizes of the Cache
/// Processor and the Memory Processor on SpecFP.
#[must_use]
pub fn figure10_scheduler_sweep(
    benchmarks: &[Benchmark],
    budget: u64,
    runner: &SweepRunner,
) -> Figure {
    let mut fig = Figure::new(
        "Figure 10: impact of scheduling policy and queue sizes in SpecFP",
        "CP config",
        "average IPC (arith. mean)",
    );
    let mem = MemoryHierarchyConfig::paper_default();
    let mp_points = [
        ("MP INO", SchedPolicy::InOrder, 20usize),
        ("MP OOO-20", SchedPolicy::OutOfOrder, 20),
        ("MP OOO-40", SchedPolicy::OutOfOrder, 40),
    ];
    let mut sweep = SweepBuilder::new();
    for (mp_label, mp_sched, mp_size) in mp_points {
        for (cp_label, cp_sched, cp_size) in figure10_cp_points() {
            let machine = Machine::Dkip(
                DkipConfig::paper_default()
                    .with_cp(cp_sched, cp_size)
                    .with_mp(mp_sched, mp_size),
            );
            sweep.point(mp_label, cp_label, &machine, &mem, benchmarks, budget);
        }
    }
    fig.series = sweep.into_series(runner);
    fig
}

/// The processor configurations compared in Figures 11 and 12.
#[must_use]
pub fn figure11_configs() -> Vec<String> {
    vec![
        "R10-256".to_owned(),
        "INO-INO".to_owned(),
        "OOO20-INO".to_owned(),
        "OOO80-INO".to_owned(),
        "OOO80-OOO40".to_owned(),
    ]
}

/// The machine simulated for one named Figure 11/12 configuration.
fn figure11_machine(config: &str) -> Machine {
    match config {
        "R10-256" => Machine::Baseline(BaselineConfig::r10_256()),
        "INO-INO" => Machine::Dkip(
            DkipConfig::paper_default()
                .with_cp(SchedPolicy::InOrder, 40)
                .with_mp(SchedPolicy::InOrder, 20),
        ),
        "OOO20-INO" => Machine::Dkip(
            DkipConfig::paper_default()
                .with_cp(SchedPolicy::OutOfOrder, 20)
                .with_mp(SchedPolicy::InOrder, 20),
        ),
        "OOO80-INO" => Machine::Dkip(
            DkipConfig::paper_default()
                .with_cp(SchedPolicy::OutOfOrder, 80)
                .with_mp(SchedPolicy::InOrder, 20),
        ),
        _ => Machine::Dkip(
            DkipConfig::paper_default()
                .with_cp(SchedPolicy::OutOfOrder, 80)
                .with_mp(SchedPolicy::OutOfOrder, 40),
        ),
    }
}

/// Figures 11 and 12: impact of the L2 cache size.
#[must_use]
pub fn figure_cache_sweep(
    suite: Suite,
    benchmarks: &[Benchmark],
    l2_sizes_kb: &[usize],
    budget: u64,
    runner: &SweepRunner,
) -> Figure {
    let number = if suite == Suite::Int { 11 } else { 12 };
    let mut fig = Figure::new(
        format!(
            "Figure {number}: impact of L2 cache size on {}",
            suite.label()
        ),
        "config",
        "IPC",
    );
    let mut sweep = SweepBuilder::new();
    for &kb in l2_sizes_kb {
        let mem = MemoryHierarchyConfig::mem_400().with_l2_kb(kb);
        for config in figure11_configs() {
            let machine = figure11_machine(&config);
            sweep.point(
                format!("{kb}KB"),
                config,
                &machine,
                &mem,
                benchmarks,
                budget,
            );
        }
    }
    fig.series = sweep.into_series(runner);
    fig
}

/// The kernel runs compared by the RISC-V IPC figure: every shipped kernel
/// at its default size.
#[must_use]
pub fn riscv_kernel_runs() -> Vec<KernelRun> {
    Kernel::ALL.into_iter().map(Kernel::default_run).collect()
}

/// The machines compared by the RISC-V IPC figure, with their series
/// labels: the small and the traditional-KILO baselines versus the D-KIP.
#[must_use]
pub fn riscv_machines() -> Vec<(String, Machine)> {
    vec![
        (
            "R10-64".to_owned(),
            Machine::Baseline(BaselineConfig::r10_64()),
        ),
        (
            "KILO-1024".to_owned(),
            Machine::Kilo(KiloConfig::kilo_1024()),
        ),
        (
            "DKIP-2048".to_owned(),
            Machine::Dkip(DkipConfig::paper_default()),
        ),
    ]
}

/// RISC-V kernel IPC: per-kernel IPC of R10-64, KILO-1024 and D-KIP-2048 on
/// the execution-driven RV64IM kernels (paper-default memory hierarchy).
///
/// Unlike the synthetic sweeps, every point is one finite program run to
/// completion — the budget only caps runaway configurations and
/// [`RISCV_BUDGET`] clears every shipped kernel.
#[must_use]
pub fn figure_riscv_ipc(runs: &[KernelRun], budget: u64, runner: &SweepRunner) -> Figure {
    let mut fig = Figure::new(
        "RISC-V kernel IPC: execution-driven RV64IM workloads on all three core families",
        "kernel",
        "IPC",
    );
    let mut sweep = SweepBuilder::new();
    for (label, machine) in riscv_machines() {
        for &run in runs {
            sweep.point_workloads(
                &label,
                run.name(),
                &machine,
                &MemoryHierarchyConfig::paper_default(),
                &[Workload::Riscv(run)],
                budget,
            );
        }
    }
    fig.series = sweep.into_series(runner);
    fig
}

/// Figures 13 and 14: maximum number of instructions and registers in the
/// LLIB for each benchmark of the given suite.
#[must_use]
pub fn figure_llib_occupancy(
    suite: Suite,
    benchmarks: &[Benchmark],
    budget: u64,
    runner: &SweepRunner,
) -> Figure {
    let number = if suite == Suite::Int { 13 } else { 14 };
    let mut fig = Figure::new(
        format!(
            "Figure {number}: maximum number of registers and instructions in the LLIB for {}",
            suite.label()
        ),
        "benchmark",
        "number of elements",
    );
    let mem = MemoryHierarchyConfig::paper_default();
    let cfg = DkipConfig::paper_default();
    let jobs: Vec<Job> = benchmarks
        .iter()
        .map(|&bench| {
            Job::new(
                bench.name(),
                Machine::Dkip(cfg.clone()),
                mem.clone(),
                bench,
                budget,
            )
        })
        .collect();
    let mut regs = Series::new("Max Registers");
    let mut instrs = Series::new("Max Instructions");
    for (&bench, stats) in benchmarks.iter().zip(runner.run_stats(&jobs)) {
        let (peak_instrs, peak_regs) = if suite == Suite::Int {
            (stats.llib_int_peak_instrs, stats.llrf_int_peak_regs)
        } else {
            (stats.llib_fp_peak_instrs, stats.llrf_fp_peak_regs)
        };
        regs.push(bench.name(), peak_regs as f64);
        instrs.push(bench.name(), peak_instrs as f64);
    }
    fig.series = vec![regs, instrs];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment drivers are exercised with tiny budgets and benchmark
    // subsets; the full-scale runs live in `dkip-bench`.

    fn runner() -> SweepRunner {
        SweepRunner::new(2)
    }

    #[test]
    fn table1_lists_all_six_configurations() {
        let fig = table1();
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.series[0].points.len(), 6);
        assert_eq!(fig.series[2].value_at("MEM-400"), Some(400.0));
    }

    #[test]
    fn window_scaling_produces_one_series_per_memory_config() {
        let fig =
            figure_window_scaling(Suite::Fp, &[Benchmark::Mesa], &[32, 128], 2_000, &runner());
        assert_eq!(fig.series.len(), 6);
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
        }
    }

    #[test]
    fn figure9_has_four_configurations_and_two_suites() {
        let fig = figure9_comparison(&[Benchmark::Crafty], &[Benchmark::Mesa], 2_000, &runner());
        assert_eq!(fig.series.len(), 4);
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
            for (_, ipc) in &series.points {
                assert!(*ipc > 0.0);
            }
        }
    }

    #[test]
    fn figure10_sweeps_cp_and_mp_configurations() {
        let fig = figure10_scheduler_sweep(&[Benchmark::Mesa], 1_500, &runner());
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.series[0].points.len(), 5);
    }

    #[test]
    fn figure13_reports_llib_occupancy_per_benchmark() {
        let fig = figure_llib_occupancy(
            Suite::Fp,
            &[Benchmark::Swim, Benchmark::Mesa],
            3_000,
            &runner(),
        );
        assert_eq!(fig.series.len(), 2);
        let instrs = &fig.series[1];
        assert!(instrs.value_at("swim").unwrap() >= instrs.value_at("mesa").unwrap());
    }

    #[test]
    fn figure3_histogram_merges_benchmarks() {
        let hist = figure3_issue_histogram(&[Benchmark::Mesa], 2_000, &runner());
        assert!(hist.total_samples() > 1_000);
    }

    #[test]
    fn empty_benchmark_list_yields_zero_ipc_points() {
        let fig = figure_window_scaling(Suite::Int, &[], &[32], 1_000, &runner());
        assert_eq!(fig.series.len(), 6);
        for series in &fig.series {
            assert_eq!(series.points, vec![("32".to_owned(), 0.0)]);
        }
    }

    #[test]
    fn duplicate_sweep_coordinates_yield_duplicate_points() {
        let fig = figure_window_scaling(Suite::Fp, &[Benchmark::Mesa], &[32, 32], 1_000, &runner());
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
            assert_eq!(series.points[0], series.points[1]);
        }
    }

    #[test]
    fn riscv_figure_covers_all_kernels_and_machines() {
        // One small kernel keeps the unit test fast; the full matrix runs in
        // the fig_riscv_ipc binary and the riscv golden test.
        let runs = vec![KernelRun::new(Kernel::FibRec, 10)];
        let fig = figure_riscv_ipc(&runs, RISCV_BUDGET, &runner());
        assert_eq!(fig.series.len(), 3);
        for series in &fig.series {
            assert_eq!(series.points.len(), 1);
            let (x, ipc) = &series.points[0];
            assert_eq!(x, "fibrec/10");
            assert!(
                *ipc > 0.0,
                "{} must complete with non-zero IPC",
                series.label
            );
        }
    }

    #[test]
    fn riscv_kernel_runs_cover_every_kernel() {
        let runs = riscv_kernel_runs();
        assert_eq!(runs.len(), Kernel::ALL.len());
        assert!(runs.iter().all(|run| run.size == run.kernel.default_size()));
    }

    #[test]
    fn drivers_are_thread_count_invariant() {
        let serial = figure9_comparison(
            &[Benchmark::Crafty],
            &[Benchmark::Mesa],
            1_500,
            &SweepRunner::serial(),
        );
        let parallel = figure9_comparison(
            &[Benchmark::Crafty],
            &[Benchmark::Mesa],
            1_500,
            &SweepRunner::new(4),
        );
        assert_eq!(serial.render(), parallel.render());
    }
}
