//! One driver per table/figure of the paper's evaluation.
//!
//! Every driver takes the benchmark list and the per-benchmark instruction
//! budget as parameters so that the same code serves quick smoke tests,
//! the Criterion benches and full regeneration runs (see `EXPERIMENTS.md`).

use crate::report::{Figure, Series};
use crate::suite_mean_ipc;
use dkip_core::run_dkip;
use dkip_kilo::run_kilo;
use dkip_model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig, SchedPolicy};
use dkip_model::Histogram;
use dkip_ooo::run_baseline;
use dkip_trace::{Benchmark, Suite};

/// Default random seed used by every experiment.
pub const SEED: u64 = 1;

/// Table 1: the six memory-subsystem configurations.
#[must_use]
pub fn table1() -> Figure {
    let mut fig = Figure::new(
        "Table 1: configurations for quantifying the effect of the memory wall",
        "config",
        "latency (cycles)",
    );
    let mut l1 = Series::new("L1 access");
    let mut l2 = Series::new("L2 access");
    let mut mem = Series::new("memory access");
    for cfg in MemoryHierarchyConfig::table1_presets() {
        l1.push(cfg.name.clone(), cfg.l1_latency as f64);
        l2.push(cfg.name.clone(), if cfg.l2_perfect || cfg.l2_size.is_some() { cfg.l2_latency as f64 } else { f64::NAN });
        mem.push(
            cfg.name.clone(),
            if cfg.l2_perfect { f64::NAN } else { cfg.memory_latency as f64 },
        );
    }
    fig.series = vec![l1, l2, mem];
    fig
}

/// Figures 1 and 2: average IPC versus instruction-window size for the six
/// Table 1 memory subsystems, on an idealised out-of-order core.
#[must_use]
pub fn figure_window_scaling(suite: Suite, benchmarks: &[Benchmark], windows: &[usize], budget: u64) -> Figure {
    let number = if suite == Suite::Int { 1 } else { 2 };
    let mut fig = Figure::new(
        format!("Figure {number}: effect of the memory subsystem on {}", suite.label()),
        "window",
        "average IPC (arith. mean)",
    );
    for mem_cfg in MemoryHierarchyConfig::table1_presets() {
        let mut series = Series::new(mem_cfg.name.clone());
        for &window in windows {
            let cfg = BaselineConfig::idealized(window);
            let ipc = suite_mean_ipc(benchmarks, &|b| run_baseline(&cfg, &mem_cfg, b, budget, SEED));
            series.push(window.to_string(), ipc);
        }
        fig.series.push(series);
    }
    fig
}

/// Figure 3: the decode→issue distance distribution on an effectively
/// unbounded processor with 400-cycle memory (SpecFP).
#[must_use]
pub fn figure3_issue_histogram(benchmarks: &[Benchmark], budget: u64) -> Histogram {
    let mut merged = Histogram::new(20, 2000);
    let cfg = BaselineConfig::unbounded();
    let mem = MemoryHierarchyConfig::mem_400();
    for &bench in benchmarks {
        let stats = run_baseline(&cfg, &mem, bench, budget, SEED);
        if let Some(hist) = stats.issue_latency {
            merged.merge(&hist);
        }
    }
    merged
}

/// Figure 9: IPC of R10-64, R10-256, KILO-1024 and D-KIP-2048 on both
/// suites.
#[must_use]
pub fn figure9_comparison(int_benchmarks: &[Benchmark], fp_benchmarks: &[Benchmark], budget: u64) -> Figure {
    let mut fig = Figure::new(
        "Figure 9: performance of the D-KIP compared to baselines and a traditional KILO processor",
        "suite",
        "average IPC (arith. mean)",
    );
    let mem = MemoryHierarchyConfig::paper_default();
    let suites: [(&str, &[Benchmark]); 2] = [("SpecINT", int_benchmarks), ("SpecFP", fp_benchmarks)];

    let mut r10_64 = Series::new("R10-64");
    let mut r10_256 = Series::new("R10-256");
    let mut kilo = Series::new("KILO-1024");
    let mut dkip = Series::new("DKIP-2048");
    for (label, benches) in suites {
        r10_64.push(
            label,
            suite_mean_ipc(benches, &|b| run_baseline(&BaselineConfig::r10_64(), &mem, b, budget, SEED)),
        );
        r10_256.push(
            label,
            suite_mean_ipc(benches, &|b| run_baseline(&BaselineConfig::r10_256(), &mem, b, budget, SEED)),
        );
        kilo.push(
            label,
            suite_mean_ipc(benches, &|b| run_kilo(&KiloConfig::kilo_1024(), &mem, b, budget, SEED)),
        );
        dkip.push(
            label,
            suite_mean_ipc(benches, &|b| run_dkip(&DkipConfig::paper_default(), &mem, b, budget, SEED)),
        );
    }
    fig.series = vec![r10_64, r10_256, kilo, dkip];
    fig
}

/// The Cache Processor configurations swept on the x-axis of Figure 10.
#[must_use]
pub fn figure10_cp_points() -> Vec<(String, SchedPolicy, usize)> {
    vec![
        ("INO".to_owned(), SchedPolicy::InOrder, 40),
        ("OOO-20".to_owned(), SchedPolicy::OutOfOrder, 20),
        ("OOO-40".to_owned(), SchedPolicy::OutOfOrder, 40),
        ("OOO-60".to_owned(), SchedPolicy::OutOfOrder, 60),
        ("OOO-80".to_owned(), SchedPolicy::OutOfOrder, 80),
    ]
}

/// Figure 10: impact of the scheduling policy and queue sizes of the Cache
/// Processor and the Memory Processor on SpecFP.
#[must_use]
pub fn figure10_scheduler_sweep(benchmarks: &[Benchmark], budget: u64) -> Figure {
    let mut fig = Figure::new(
        "Figure 10: impact of scheduling policy and queue sizes in SpecFP",
        "CP config",
        "average IPC (arith. mean)",
    );
    let mem = MemoryHierarchyConfig::paper_default();
    let mp_points = [
        ("MP INO", SchedPolicy::InOrder, 20usize),
        ("MP OOO-20", SchedPolicy::OutOfOrder, 20),
        ("MP OOO-40", SchedPolicy::OutOfOrder, 40),
    ];
    for (mp_label, mp_sched, mp_size) in mp_points {
        let mut series = Series::new(mp_label);
        for (cp_label, cp_sched, cp_size) in figure10_cp_points() {
            let cfg = DkipConfig::paper_default()
                .with_cp(cp_sched, cp_size)
                .with_mp(mp_sched, mp_size);
            let ipc = suite_mean_ipc(benchmarks, &|b| run_dkip(&cfg, &mem, b, budget, SEED));
            series.push(cp_label.clone(), ipc);
        }
        fig.series.push(series);
    }
    fig
}

/// The processor configurations compared in Figures 11 and 12.
#[must_use]
pub fn figure11_configs() -> Vec<String> {
    vec![
        "R10-256".to_owned(),
        "INO-INO".to_owned(),
        "OOO20-INO".to_owned(),
        "OOO80-INO".to_owned(),
        "OOO80-OOO40".to_owned(),
    ]
}

/// Figures 11 and 12: impact of the L2 cache size.
#[must_use]
pub fn figure_cache_sweep(suite: Suite, benchmarks: &[Benchmark], l2_sizes_kb: &[usize], budget: u64) -> Figure {
    let number = if suite == Suite::Int { 11 } else { 12 };
    let mut fig = Figure::new(
        format!("Figure {number}: impact of L2 cache size on {}", suite.label()),
        "config",
        "IPC",
    );
    for &kb in l2_sizes_kb {
        let mem = MemoryHierarchyConfig::mem_400().with_l2_kb(kb);
        let mut series = Series::new(format!("{kb}KB"));
        for config in figure11_configs() {
            let ipc = match config.as_str() {
                "R10-256" => suite_mean_ipc(benchmarks, &|b| {
                    run_baseline(&BaselineConfig::r10_256(), &mem, b, budget, SEED)
                }),
                "INO-INO" => {
                    let cfg = DkipConfig::paper_default()
                        .with_cp(SchedPolicy::InOrder, 40)
                        .with_mp(SchedPolicy::InOrder, 20);
                    suite_mean_ipc(benchmarks, &|b| run_dkip(&cfg, &mem, b, budget, SEED))
                }
                "OOO20-INO" => {
                    let cfg = DkipConfig::paper_default()
                        .with_cp(SchedPolicy::OutOfOrder, 20)
                        .with_mp(SchedPolicy::InOrder, 20);
                    suite_mean_ipc(benchmarks, &|b| run_dkip(&cfg, &mem, b, budget, SEED))
                }
                "OOO80-INO" => {
                    let cfg = DkipConfig::paper_default()
                        .with_cp(SchedPolicy::OutOfOrder, 80)
                        .with_mp(SchedPolicy::InOrder, 20);
                    suite_mean_ipc(benchmarks, &|b| run_dkip(&cfg, &mem, b, budget, SEED))
                }
                _ => {
                    let cfg = DkipConfig::paper_default()
                        .with_cp(SchedPolicy::OutOfOrder, 80)
                        .with_mp(SchedPolicy::OutOfOrder, 40);
                    suite_mean_ipc(benchmarks, &|b| run_dkip(&cfg, &mem, b, budget, SEED))
                }
            };
            series.push(config, ipc);
        }
        fig.series.push(series);
    }
    fig
}

/// Figures 13 and 14: maximum number of instructions and registers in the
/// LLIB for each benchmark of the given suite.
#[must_use]
pub fn figure_llib_occupancy(suite: Suite, benchmarks: &[Benchmark], budget: u64) -> Figure {
    let number = if suite == Suite::Int { 13 } else { 14 };
    let mut fig = Figure::new(
        format!(
            "Figure {number}: maximum number of registers and instructions in the LLIB for {}",
            suite.label()
        ),
        "benchmark",
        "number of elements",
    );
    let mem = MemoryHierarchyConfig::paper_default();
    let cfg = DkipConfig::paper_default();
    let mut regs = Series::new("Max Registers");
    let mut instrs = Series::new("Max Instructions");
    for &bench in benchmarks {
        let stats = run_dkip(&cfg, &mem, bench, budget, SEED);
        let (peak_instrs, peak_regs) = if suite == Suite::Int {
            (stats.llib_int_peak_instrs, stats.llrf_int_peak_regs)
        } else {
            (stats.llib_fp_peak_instrs, stats.llrf_fp_peak_regs)
        };
        regs.push(bench.name(), peak_regs as f64);
        instrs.push(bench.name(), peak_instrs as f64);
    }
    fig.series = vec![regs, instrs];
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment drivers are exercised with tiny budgets and benchmark
    // subsets; the full-scale runs live in `dkip-bench`.

    #[test]
    fn table1_lists_all_six_configurations() {
        let fig = table1();
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.series[0].points.len(), 6);
        assert_eq!(fig.series[2].value_at("MEM-400"), Some(400.0));
    }

    #[test]
    fn window_scaling_produces_one_series_per_memory_config() {
        let fig = figure_window_scaling(Suite::Fp, &[Benchmark::Mesa], &[32, 128], 2_000);
        assert_eq!(fig.series.len(), 6);
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
        }
    }

    #[test]
    fn figure9_has_four_configurations_and_two_suites() {
        let fig = figure9_comparison(&[Benchmark::Crafty], &[Benchmark::Mesa], 2_000);
        assert_eq!(fig.series.len(), 4);
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
            for (_, ipc) in &series.points {
                assert!(*ipc > 0.0);
            }
        }
    }

    #[test]
    fn figure10_sweeps_cp_and_mp_configurations() {
        let fig = figure10_scheduler_sweep(&[Benchmark::Mesa], 1_500);
        assert_eq!(fig.series.len(), 3);
        assert_eq!(fig.series[0].points.len(), 5);
    }

    #[test]
    fn figure13_reports_llib_occupancy_per_benchmark() {
        let fig = figure_llib_occupancy(Suite::Fp, &[Benchmark::Swim, Benchmark::Mesa], 3_000);
        assert_eq!(fig.series.len(), 2);
        let instrs = &fig.series[1];
        assert!(instrs.value_at("swim").unwrap() >= instrs.value_at("mesa").unwrap());
    }

    #[test]
    fn figure3_histogram_merges_benchmarks() {
        let hist = figure3_issue_histogram(&[Benchmark::Mesa], 2_000);
        assert!(hist.total_samples() > 1_000);
    }
}
