//! Golden-snapshot comparison for regression-pinning simulation statistics.
//!
//! A golden snapshot is a checked-in text file (see `tests/golden/` at the
//! workspace root) holding the stable serialisation of a fixed sweep —
//! [`crate::runner::results_to_kv`] output. The snapshot tests regenerate
//! the sweep and call [`check`]:
//!
//! * on a match, the test passes;
//! * on a mismatch (or a missing snapshot), the test fails with a line-level
//!   diff summary — unless the `DKIP_BLESS=1` environment variable is set,
//!   in which case the snapshot is (re)written and the test passes.
//!
//! The bless workflow is therefore `DKIP_BLESS=1 cargo test --test
//! golden_stats` (or `make bless`), followed by reviewing the diff of
//! `tests/golden/` like any other code change.

use std::fmt;
use std::path::Path;

/// Environment variable that switches [`check`] from compare to regenerate.
pub const BLESS_ENV: &str = "DKIP_BLESS";

/// Whether the current process was asked to regenerate snapshots.
#[must_use]
pub fn bless_requested() -> bool {
    std::env::var(BLESS_ENV).is_ok_and(|v| v == "1")
}

/// A golden-snapshot mismatch, with a human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenError {
    message: String,
}

impl GoldenError {
    fn new(message: String) -> Self {
        GoldenError { message }
    }
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for GoldenError {}

/// First-divergence diff summary between expected and actual documents.
fn diff_summary(expected: &str, actual: &str) -> String {
    let expected_lines: Vec<&str> = expected.lines().collect();
    let actual_lines: Vec<&str> = actual.lines().collect();
    for (idx, (e, a)) in expected_lines.iter().zip(&actual_lines).enumerate() {
        if e != a {
            return format!(
                "first divergence at line {}:\n  golden: {e}\n  actual: {a}",
                idx + 1
            );
        }
    }
    if expected_lines.len() == actual_lines.len() {
        // Same lines, unequal strings: only line terminators can differ.
        return "documents differ only in trailing newlines/whitespace".to_owned();
    }
    format!(
        "line counts differ: golden has {} lines, actual has {}",
        expected_lines.len(),
        actual_lines.len()
    )
}

/// Compares `actual` against the snapshot at `path`, honouring `DKIP_BLESS`.
///
/// # Errors
///
/// Returns a [`GoldenError`] when the snapshot is missing or differs and
/// blessing was not requested, or when the snapshot cannot be written while
/// blessing.
pub fn check(path: &Path, actual: &str) -> Result<(), GoldenError> {
    if bless_requested() {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(|e| {
                GoldenError::new(format!("cannot create {}: {e}", parent.display()))
            })?;
        }
        // Write-then-rename so concurrent readers (tests run in parallel)
        // never observe a truncated snapshot.
        let tmp = path.with_extension("golden.tmp");
        std::fs::write(&tmp, actual)
            .map_err(|e| GoldenError::new(format!("cannot bless {}: {e}", tmp.display())))?;
        return std::fs::rename(&tmp, path)
            .map_err(|e| GoldenError::new(format!("cannot bless {}: {e}", path.display())));
    }
    match std::fs::read_to_string(path) {
        Err(_) => Err(GoldenError::new(format!(
            "missing golden snapshot {}; run with {BLESS_ENV}=1 (make bless) to create it",
            path.display()
        ))),
        Ok(expected) if expected == actual => Ok(()),
        Ok(expected) => Err(GoldenError::new(format!(
            "golden snapshot {} is stale ({}); rerun with {BLESS_ENV}=1 (make bless) if the change is intended",
            path.display(),
            diff_summary(&expected, actual)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("dkip-golden-test-{}-{name}", std::process::id()));
        path
    }

    #[test]
    fn matching_snapshot_passes() {
        let path = scratch("match.golden");
        std::fs::write(&path, "a=1\nb=2\n").unwrap();
        assert!(check(&path, "a=1\nb=2\n").is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatch_reports_first_divergent_line() {
        let path = scratch("mismatch.golden");
        std::fs::write(&path, "a=1\nb=2\n").unwrap();
        let err = check(&path, "a=1\nb=3\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "unexpected message: {msg}");
        assert!(msg.contains("b=2") && msg.contains("b=3"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_snapshot_mentions_bless() {
        let path = scratch("missing.golden");
        std::fs::remove_file(&path).ok();
        let err = check(&path, "a=1\n").unwrap_err();
        assert!(err.to_string().contains(BLESS_ENV));
    }

    #[test]
    fn trailing_newline_mismatch_is_named_explicitly() {
        let path = scratch("newline.golden");
        std::fs::write(&path, "a=1\nb=2").unwrap();
        let err = check(&path, "a=1\nb=2\n").unwrap_err();
        assert!(err.to_string().contains("trailing newlines"), "got: {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_reports_line_counts() {
        let path = scratch("truncated.golden");
        std::fs::write(&path, "a=1\n").unwrap();
        let err = check(&path, "a=1\nb=2\n").unwrap_err();
        assert!(err.to_string().contains("line counts differ"));
        std::fs::remove_file(&path).ok();
    }
}
