//! The traditional KILO-instruction processor baseline (`KILO-1024` in
//! Figure 9 of the paper).
//!
//! This baseline follows the out-of-order-commit / SLIQ line of work the
//! D-KIP paper compares against (Cristal et al.): a small **pseudo-ROB**
//! virtualised by multicheckpointing, conventional issue queues, and a large
//! **Slow-Lane Instruction Queue (SLIQ)** that holds instructions dependent
//! on outstanding long-latency loads *outside* the issue queues and lets
//! them re-enter (and issue out of order) once their operands return. The
//! SLIQ is issue-capable, unlike the D-KIP's FIFO LLIB — which is why the
//! traditional KILO design handles pointer-chasing integer code slightly
//! better, at the cost of much larger CAM structures.
//!
//! The model reuses the `dkip-ooo` engine with its slow-lane option: the
//! in-flight window is bounded by the SLIQ capacity, the issue queues by
//! the KILO queue size, and miss-dependent instructions are parked in the
//! slow lane. The KILO configurations are the most demanding users of that
//! engine's hot path (a 1088-entry window and 72-entry issue queues), so
//! they benefit directly from its sorted-slot issue-queue scoreboards,
//! pooled consumer tables and fast deterministic hashing (see
//! ARCHITECTURE.md, "Hot-path data structures").
//!
//! # Example
//!
//! ```
//! use dkip_kilo::run_kilo;
//! use dkip_model::config::{KiloConfig, MemoryHierarchyConfig};
//! use dkip_trace::Benchmark;
//!
//! let stats = run_kilo(
//!     &KiloConfig::kilo_1024(),
//!     &MemoryHierarchyConfig::mem_400(),
//!     Benchmark::Mesa,
//!     5_000,
//!     1,
//! );
//! assert!(stats.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use dkip_bpred::PredictorKind;
use dkip_mem::MemoryHierarchy;
use dkip_model::config::{KiloConfig, MemoryHierarchyConfig};
use dkip_model::telemetry::Telemetry;
use dkip_model::{MicroOp, SimStats};
use dkip_ooo::{CoreParams, OooCore};
use dkip_trace::{Benchmark, TraceGenerator};

/// Builds the engine parameters for a traditional KILO-instruction
/// processor.
#[must_use]
pub fn kilo_core_params(cfg: &KiloConfig) -> CoreParams {
    CoreParams {
        name: cfg.name.clone(),
        // The pseudo-ROB is virtualised by checkpointing, so the in-flight
        // window is bounded by the SLIQ plus the pseudo-ROB itself.
        window: cfg.sliq_capacity + cfg.pseudo_rob_capacity,
        int_iq: cfg.iq_capacity,
        fp_iq: cfg.iq_capacity,
        sched: dkip_model::config::SchedPolicy::OutOfOrder,
        lsq: cfg.lsq_capacity,
        memory_ports: cfg.memory_ports,
        widths: cfg.widths,
        fu: cfg.fu,
        mispredict_penalty: cfg.mispredict_penalty,
        collect_issue_histogram: false,
        slow_lane: Some(cfg.sliq_capacity),
        predictor: PredictorKind::Perceptron,
    }
}

/// Creates a KILO-1024-style core over the given memory hierarchy.
///
/// # Panics
///
/// Panics if the configuration is invalid.
#[must_use]
pub fn build_kilo_core(cfg: &KiloConfig, mem: MemoryHierarchy) -> OooCore {
    cfg.validate().expect("invalid KILO configuration");
    OooCore::new(kilo_core_params(cfg), mem)
}

/// Runs an arbitrary correct-path [`MicroOp`] stream for up to `max_instrs`
/// committed instructions on the traditional KILO baseline. Finite streams
/// (e.g. the `dkip-riscv` kernels) run to completion and drain the
/// pipeline.
///
/// # Panics
///
/// Panics if the memory or processor configuration is invalid.
#[must_use]
pub fn run_kilo_stream(
    cfg: &KiloConfig,
    mem_cfg: &MemoryHierarchyConfig,
    stream: &mut dyn Iterator<Item = MicroOp>,
    max_instrs: u64,
) -> SimStats {
    run_kilo_stream_probed(cfg, mem_cfg, stream, max_instrs, None)
}

/// [`run_kilo_stream`] with an optional telemetry sink attached (`None` is
/// bit-identical to the plain entry point). The shared engine reports the
/// SLIQ/slow-lane occupancy through the frame's low-locality-buffer
/// column.
///
/// # Panics
///
/// Panics if the memory or processor configuration is invalid.
#[must_use]
pub fn run_kilo_stream_probed(
    cfg: &KiloConfig,
    mem_cfg: &MemoryHierarchyConfig,
    stream: &mut dyn Iterator<Item = MicroOp>,
    max_instrs: u64,
    probe: Option<&mut Telemetry>,
) -> SimStats {
    let mem = MemoryHierarchy::new(mem_cfg.clone()).expect("invalid memory configuration");
    let mut core = build_kilo_core(cfg, mem);
    core.run_probed(stream, max_instrs, probe)
}

/// Runs `benchmark` for `max_instrs` committed instructions on the
/// traditional KILO baseline.
///
/// # Panics
///
/// Panics if the memory or processor configuration is invalid.
#[must_use]
pub fn run_kilo(
    cfg: &KiloConfig,
    mem_cfg: &MemoryHierarchyConfig,
    benchmark: Benchmark,
    max_instrs: u64,
    seed: u64,
) -> SimStats {
    run_kilo_stream(
        cfg,
        mem_cfg,
        &mut TraceGenerator::new(benchmark, seed),
        max_instrs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkip_model::config::BaselineConfig;
    use dkip_ooo::run_baseline;

    #[test]
    fn params_follow_the_kilo_1024_configuration() {
        let params = kilo_core_params(&KiloConfig::kilo_1024());
        assert_eq!(params.window, 1024 + 64);
        assert_eq!(params.int_iq, 72);
        assert_eq!(params.slow_lane, Some(1024));
    }

    #[test]
    fn kilo_commits_instructions_and_reports_ipc() {
        let stats = run_kilo(
            &KiloConfig::kilo_1024(),
            &MemoryHierarchyConfig::mem_400(),
            Benchmark::Crafty,
            6_000,
            1,
        );
        assert!(stats.committed >= 6_000);
        assert!(stats.ipc() > 0.0 && stats.ipc() <= 4.0);
    }

    #[test]
    fn kilo_beats_a_small_conventional_core_on_memory_bound_fp() {
        let mem = MemoryHierarchyConfig::mem_400();
        let kilo = run_kilo(&KiloConfig::kilo_1024(), &mem, Benchmark::Swim, 12_000, 1);
        let r10_64 = run_baseline(&BaselineConfig::r10_64(), &mem, Benchmark::Swim, 12_000, 1);
        assert!(
            kilo.ipc() > r10_64.ipc(),
            "kilo={} r10-64={}",
            kilo.ipc(),
            r10_64.ipc()
        );
    }

    #[test]
    #[should_panic(expected = "invalid KILO configuration")]
    fn invalid_configurations_are_rejected() {
        let mut cfg = KiloConfig::kilo_1024();
        cfg.sliq_capacity = 0;
        let mem = MemoryHierarchy::new(MemoryHierarchyConfig::mem_400()).unwrap();
        let _ = build_kilo_core(&cfg, mem);
    }
}
