//! Result-store contract tests: key stability, hit==recompute
//! bit-identity, salt invalidation, corruption recovery and
//! interrupted-sweep resume.
//!
//! The committed fixture `tests/golden/cache_keys.golden` pins the
//! *unsalted* config-key digest ([`dkip::model::key_digest`] over
//! [`Job::key_text`]) of every golden-suite job. Anything that changes the
//! hash inputs — a renamed field, a reordered key line, a formatting tweak
//! — fails this test loudly, which is the intent: a silent key change
//! invalidates every cache in the world (annoying) or, far worse, could
//! let two different configurations collide. Accept an *intended* change
//! with `DKIP_BLESS=1 cargo test --test store` and bump
//! `dkip_sim::store::RESULTS_EPOCH` in the same commit.

use std::path::PathBuf;
use std::sync::Mutex;

use dkip::model::key_digest;
use dkip::sim::chaos;
use dkip::sim::runner::results_to_kv;
use dkip::sim::store::{ResultStore, CACHE_SALT_ENV};
use dkip::sim::{golden, suites, SweepRunner};

/// Serialises tests that open stores or touch `DKIP_CACHE_SALT`: the salt
/// is sampled from the environment at `ResultStore::open` time, so opens
/// must not interleave with another test's salt perturbation.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dkip-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// The committed key↔config fixture: one line per golden-suite job. The
/// digest is over the unsalted key text, so it is stable across crate
/// version bumps (the store adds the version salt on top).
#[test]
fn cache_key_fixture_pins_the_hash_inputs() {
    let mut doc = String::new();
    for (suite_name, jobs) in suites::golden_suites() {
        for (idx, job) in jobs.iter().enumerate() {
            doc.push_str(&format!(
                "{}  {suite_name} job {idx}: {}\n",
                key_digest(&job.key_text()),
                job.label,
            ));
        }
    }
    if let Err(err) = golden::check(&golden_path("cache_keys.golden"), &doc) {
        panic!(
            "cache-key derivation changed — if intended, bless this fixture AND bump \
             dkip_sim::store::RESULTS_EPOCH\n{err}"
        );
    }
}

/// Cold populate, then warm re-runs at 1 and 8 threads: zero recomputes,
/// byte-identical to the uncached reference at every thread count.
#[test]
fn warm_runs_recompute_nothing_and_match_bit_for_bit() {
    let _guard = ENV_LOCK.lock().unwrap();
    let jobs = suites::golden_suite_jobs("kilo", Some(1_500)).unwrap();
    let reference = results_to_kv(&SweepRunner::new(2).run(&jobs));
    let store = ResultStore::open(scratch("warm")).unwrap();
    let cold = SweepRunner::new(2)
        .with_store(store.clone())
        .run_report(&jobs);
    assert_eq!((cold.hits, cold.misses), (0, jobs.len() as u64));
    assert_eq!(results_to_kv(&cold.results), reference);
    for threads in [1, 8] {
        let warm = SweepRunner::new(threads)
            .with_store(store.clone())
            .run_report(&jobs);
        assert_eq!(
            (warm.hits, warm.misses),
            (jobs.len() as u64, 0),
            "warm run at {threads} threads must not simulate"
        );
        assert_eq!(
            results_to_kv(&warm.results),
            reference,
            "cache hits must be byte-identical to a recompute at {threads} threads"
        );
    }
    let _ = std::fs::remove_dir_all(store.root());
}

/// Changing the version salt must miss every existing entry — and the
/// recomputed results must still match the reference exactly.
#[test]
fn salt_perturbation_invalidates_the_cache() {
    let _guard = ENV_LOCK.lock().unwrap();
    let jobs = suites::golden_suite_jobs("baseline", Some(1_000)).unwrap();
    let dir = scratch("salt");
    let store = ResultStore::open(&dir).unwrap();
    let cold = SweepRunner::new(2).with_store(store).run_report(&jobs);
    assert_eq!(cold.hits, 0);
    std::env::set_var(CACHE_SALT_ENV, "store-test-perturbation");
    let perturbed_store = ResultStore::open(&dir).unwrap();
    std::env::remove_var(CACHE_SALT_ENV);
    let perturbed = SweepRunner::new(2)
        .with_store(perturbed_store)
        .run_report(&jobs);
    assert_eq!(
        (perturbed.hits, perturbed.misses),
        (0, jobs.len() as u64),
        "a salt change must invalidate every entry"
    );
    assert_eq!(
        results_to_kv(&perturbed.results),
        results_to_kv(&cold.results)
    );
    // The original salt still hits its own entries.
    let back = SweepRunner::new(2)
        .with_store(ResultStore::open(&dir).unwrap())
        .run_report(&jobs);
    assert_eq!(back.hits, jobs.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An interrupted sweep (only part of the job list completed) resumes as
/// cache hits for the finished jobs and recomputes exactly the rest.
#[test]
fn interrupted_sweeps_resume_from_the_store() {
    let _guard = ENV_LOCK.lock().unwrap();
    let jobs = suites::golden_suite_jobs("kilo", Some(1_200)).unwrap();
    assert_eq!(jobs.len(), 3);
    let reference = results_to_kv(&SweepRunner::serial().run(&jobs));
    let store = ResultStore::open(scratch("resume")).unwrap();
    // "Interruption": the first run only gets through two of the three jobs.
    let partial = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs[..2]);
    assert_eq!(partial.misses, 2);
    // The restarted full sweep hits the two finished jobs, computes the one
    // that was lost, and its output matches an uninterrupted run exactly.
    let resumed = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    assert_eq!((resumed.hits, resumed.misses), (2, 1));
    assert_eq!(results_to_kv(&resumed.results), reference);
    let _ = std::fs::remove_dir_all(store.root());
}

/// A store whose writes all fail (injected `ENOSPC`, the moral equivalent
/// of a cache directory turned read-only mid-sweep) degrades to uncached
/// operation: results stay byte-identical to the uncached reference, no
/// partial entry is ever left behind to be served later, and the store
/// heals on the next fault-free open.
#[test]
fn enospc_writes_degrade_to_uncached_and_never_leave_partial_entries() {
    let _guard = ENV_LOCK.lock().unwrap();
    let jobs = suites::golden_suite_jobs("kilo", Some(1_300)).unwrap();
    let reference = results_to_kv(&SweepRunner::serial().run(&jobs));
    let dir = scratch("enospc");
    let store = ResultStore::open(&dir).unwrap();
    chaos::arm("store.write:1:3").expect("valid fault spec");
    let faulted = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    chaos::disarm();
    assert!(
        faulted.failures.is_empty(),
        "write failures degrade caching, they never fail jobs"
    );
    assert_eq!(faulted.misses, jobs.len() as u64);
    assert_eq!(
        results_to_kv(&faulted.results),
        reference,
        "degraded-to-uncached results are byte-identical to the reference"
    );
    assert_eq!(
        store.write_errors(),
        1,
        "degrade trips on the first exhausted write"
    );
    assert!(store.degraded());
    // Nothing partial on disk: a fresh open sees a completely cold store.
    let entries: Vec<PathBuf> = walk_files(&dir);
    assert!(
        entries.iter().all(|p| {
            let name = p.file_name().unwrap().to_string_lossy();
            !name.ends_with(".entry") && !name.contains(".tmp")
        }),
        "no entry or temp files may survive a failed write: {entries:?}"
    );
    let reopened = ResultStore::open(&dir).unwrap();
    let cold = SweepRunner::serial()
        .with_store(reopened.clone())
        .run_report(&jobs);
    assert_eq!(
        (cold.hits, cold.misses),
        (0, jobs.len() as u64),
        "a partial entry must never be served as a hit"
    );
    assert_eq!(results_to_kv(&cold.results), reference);
    // The healed store is fully warm now.
    let warm = SweepRunner::serial().with_store(reopened).run_report(&jobs);
    assert_eq!((warm.hits, warm.misses), (jobs.len() as u64, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every regular file under `dir`, recursively.
fn walk_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return files;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            files.extend(walk_files(&path));
        } else {
            files.push(path);
        }
    }
    files
}

/// A truncated entry is recovered from: logged, treated as a miss,
/// recomputed, rewritten — and the output never changes.
#[test]
fn corrupted_entries_recover_by_recomputing() {
    let _guard = ENV_LOCK.lock().unwrap();
    let jobs = suites::golden_suite_jobs("kilo", Some(1_000)).unwrap();
    let store = ResultStore::open(scratch("recover")).unwrap();
    let cold = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    let reference = results_to_kv(&cold.results);
    // Truncate the first job's entry mid-document.
    let key = store.key_for_text(&jobs[0].key_text());
    let entry = store.root().join(&key[..2]).join(format!("{key}.entry"));
    let full = std::fs::read_to_string(&entry).expect("entry exists after the cold run");
    std::fs::write(&entry, &full.as_bytes()[..full.len() / 3]).unwrap();
    let recovered = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    assert_eq!(
        (recovered.hits, recovered.misses),
        (jobs.len() as u64 - 1, 1),
        "the corrupt entry must be a miss, everything else a hit"
    );
    assert_eq!(results_to_kv(&recovered.results), reference);
    // The rewrite restored the entry: everything hits now.
    let healed = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    assert_eq!((healed.hits, healed.misses), (jobs.len() as u64, 0));
    assert_eq!(
        std::fs::read_to_string(&entry).unwrap(),
        full,
        "the rewritten entry is byte-identical to the original"
    );
    let _ = std::fs::remove_dir_all(store.root());
}
