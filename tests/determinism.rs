//! Same config + same seed ⇒ identical statistics, for every processor
//! family — and the parallel sweep runner reproduces the serial results
//! bit-for-bit.
//!
//! This generalises the old `deterministic_across_runs` unit test in
//! `crates/core/src/processor.rs` to all three `run_*` entry points and to
//! the [`SweepRunner`], whose golden-snapshot subsystem depends on exactly
//! this property.

use dkip::model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip::sim::runner::results_to_kv;
use dkip::sim::{run_baseline, run_dkip, run_kilo, Job, Machine, SweepRunner};
use dkip::trace::Benchmark;

const BUDGET: u64 = 6_000;

fn machines() -> Vec<Machine> {
    vec![
        Machine::Baseline(BaselineConfig::r10_64()),
        Machine::Kilo(KiloConfig::kilo_1024()),
        Machine::Dkip(DkipConfig::paper_default()),
    ]
}

#[test]
fn baseline_is_deterministic_for_same_seed() {
    let cfg = BaselineConfig::r10_256();
    let mem = MemoryHierarchyConfig::mem_400();
    let a = run_baseline(&cfg, &mem, Benchmark::Gcc, BUDGET, 7);
    let b = run_baseline(&cfg, &mem, Benchmark::Gcc, BUDGET, 7);
    assert_eq!(a, b, "baseline SimStats must be identical across runs");
}

#[test]
fn kilo_is_deterministic_for_same_seed() {
    let cfg = KiloConfig::kilo_1024();
    let mem = MemoryHierarchyConfig::mem_400();
    let a = run_kilo(&cfg, &mem, Benchmark::Mesa, BUDGET, 7);
    let b = run_kilo(&cfg, &mem, Benchmark::Mesa, BUDGET, 7);
    assert_eq!(a, b, "KILO SimStats must be identical across runs");
}

#[test]
fn dkip_is_deterministic_for_same_seed() {
    let cfg = DkipConfig::paper_default();
    let mem = MemoryHierarchyConfig::mem_400();
    let a = run_dkip(&cfg, &mem, Benchmark::Swim, BUDGET, 7);
    let b = run_dkip(&cfg, &mem, Benchmark::Swim, BUDGET, 7);
    assert_eq!(a, b, "D-KIP SimStats must be identical across runs");
}

#[test]
fn different_seeds_change_the_workload() {
    let cfg = DkipConfig::paper_default();
    let mem = MemoryHierarchyConfig::mem_400();
    let a = run_dkip(&cfg, &mem, Benchmark::Gcc, BUDGET, 1);
    let b = run_dkip(&cfg, &mem, Benchmark::Gcc, BUDGET, 2);
    assert_ne!(a, b, "the seed must actually steer the trace generator");
}

/// One job per (family × benchmark × seed), mixing budgets so the jobs have
/// unequal lengths and the dynamic scheduler actually interleaves them.
fn job_matrix() -> Vec<Job> {
    let mem = MemoryHierarchyConfig::mem_400();
    let mut jobs = Vec::new();
    for machine in machines() {
        for (i, &bench) in [
            Benchmark::Gcc,
            Benchmark::Mcf,
            Benchmark::Swim,
            Benchmark::Mesa,
        ]
        .iter()
        .enumerate()
        {
            let budget = 2_000 + 1_000 * i as u64;
            jobs.push(
                Job::new(
                    format!("{}|{}", machine.family(), bench.name()),
                    machine.clone(),
                    mem.clone(),
                    bench,
                    budget,
                )
                .with_seed(1 + i as u64),
            );
        }
    }
    jobs
}

#[test]
fn parallel_runner_reproduces_serial_results_bit_for_bit() {
    let jobs = job_matrix();
    let serial = SweepRunner::serial().run(&jobs);
    for threads in [2, 4, 8] {
        let parallel = SweepRunner::new(threads).run(&jobs);
        assert_eq!(
            results_to_kv(&serial),
            results_to_kv(&parallel),
            "threads={threads} must serialise identically to threads=1"
        );
    }
}

#[test]
fn runner_results_match_direct_calls() {
    let jobs = job_matrix();
    let results = SweepRunner::new(4).run(&jobs);
    for (job, result) in jobs.iter().zip(&results) {
        let direct = job
            .machine
            .simulate(&job.mem, &job.workload, job.budget, job.seed);
        assert_eq!(
            direct, result.stats,
            "job {} must match a direct run_* call",
            job.label
        );
    }
}
