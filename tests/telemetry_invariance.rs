//! Telemetry invariance contract: attaching the probe sink must be
//! *observationally pure*. Every pinned golden sweep — the three
//! Spec-family suites and the 18-job RISC-V matrix — is run with interval
//! metrics off and on (`DKIP_METRICS`), at exactly 1 and 8 runner threads,
//! and the full `SimStats::to_kv()` serialisations must be bit-identical.
//! The per-job metrics files themselves must also be byte-identical across
//! thread counts (rows are keyed on committed instructions, not host
//! scheduling). A differential-fuzz pass with both telemetry backends
//! attached closes the loop: probed cores still drain generated programs to
//! the exact oracle state.
//!
//! `golden_stats.rs` separately pins the unprobed output against the
//! snapshots in `tests/golden/`, so together the two tests prove
//! probe-on == probe-off == golden.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dkip::riscv::GenConfig;
use dkip::sim::fuzz::{check_config, check_source, FuzzOptions};
use dkip::sim::runner::{results_to_kv, JobResult};
use dkip::sim::suites;
use dkip::sim::SweepRunner;
use dkip_model::METRICS_ENV;

/// Serialises env-var flips: jobs sample `DKIP_METRICS` at construction
/// time, so no sweep may be in flight while another test mutates it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Interval chosen so even the 4k-instruction golden budgets produce
/// several rows per job.
const INTERVAL: u64 = 500;

fn metrics_dir(suite: &str, threads: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("telemetry_invariance")
        .join(format!("{suite}-{threads}t"))
}

fn run_suite(name: &str, threads: usize, metrics: Option<&Path>) -> Vec<JobResult> {
    match metrics {
        Some(dir) => {
            // Start from an empty directory so stale files from an earlier
            // run can never satisfy (or break) the comparison.
            let _ = std::fs::remove_dir_all(dir);
            std::fs::create_dir_all(dir).expect("create metrics dir");
            std::env::set_var(METRICS_ENV, format!("{}/m.csv:{INTERVAL}", dir.display()));
        }
        None => std::env::remove_var(METRICS_ENV),
    }
    let jobs = suites::golden_suites()
        .into_iter()
        .find(|(suite_name, _)| *suite_name == name)
        .map(|(_, jobs)| jobs)
        .expect("known suite name");
    let results = SweepRunner::new(threads).run(&jobs);
    std::env::remove_var(METRICS_ENV);
    results
}

/// Reads every metrics file of a run directory into `name -> contents`.
fn read_metrics(dir: &Path) -> BTreeMap<String, String> {
    std::fs::read_dir(dir)
        .expect("metrics dir exists")
        .map(|entry| {
            let entry = entry.expect("readable dir entry");
            let name = entry.file_name().to_string_lossy().into_owned();
            let contents = std::fs::read_to_string(entry.path()).expect("readable metrics file");
            (name, contents)
        })
        .collect()
}

fn check_suite(name: &str) {
    let _guard = ENV_LOCK.lock().expect("env lock poisoned");
    let mut per_thread_files: Vec<BTreeMap<String, String>> = Vec::new();
    for threads in [1, 8] {
        let off = run_suite(name, threads, None);
        let dir = metrics_dir(name, threads);
        let on = run_suite(name, threads, Some(&dir));
        assert_eq!(
            results_to_kv(&off),
            results_to_kv(&on),
            "suite {name} at {threads} threads: attaching the metrics probe must be \
             bit-identical to running unprobed"
        );
        let files = read_metrics(&dir);
        assert_eq!(
            files.len(),
            on.len(),
            "suite {name} at {threads} threads: one metrics file per job"
        );
        assert!(
            files.values().all(|text| text.lines().count() >= 2),
            "suite {name} at {threads} threads: every metrics file has a header and rows"
        );
        per_thread_files.push(files);
    }
    assert_eq!(
        per_thread_files[0], per_thread_files[1],
        "suite {name}: metrics files must be byte-identical across thread counts"
    );
}

#[test]
fn spec_baseline_suite_is_bit_identical_with_telemetry() {
    check_suite("baseline.golden");
}

#[test]
fn spec_kilo_suite_is_bit_identical_with_telemetry() {
    check_suite("kilo.golden");
}

#[test]
fn spec_dkip_suite_is_bit_identical_with_telemetry() {
    check_suite("dkip.golden");
}

#[test]
fn riscv_18_job_matrix_is_bit_identical_with_telemetry() {
    check_suite("riscv.golden");
}

#[test]
fn fuzzed_programs_agree_with_the_oracle_under_both_backends() {
    // One generated-program differential pass per seed with the in-memory
    // metrics + trace sink attached: the oracle comparison inside
    // `check_config` proves a probed core still drains the exact program,
    // and the agreement must match the unprobed run's.
    let probed = FuzzOptions {
        probed: true,
        sampled: false,
        envelope: false,
        ..FuzzOptions::default()
    };
    let plain = FuzzOptions {
        probed: false,
        ..probed.clone()
    };
    for seed in 0..4 {
        let cfg = GenConfig::new(seed);
        let with =
            check_config(&cfg, &probed).unwrap_or_else(|m| panic!("seed {seed} probed: {m}"));
        let without =
            check_config(&cfg, &plain).unwrap_or_else(|m| panic!("seed {seed} unprobed: {m}"));
        assert_eq!(
            with, without,
            "seed {seed}: probing must not change agreement"
        );
    }
    // And one fixed long-loop program that spans many metrics intervals.
    let src = "li t0, 2000\nloop:\n  addi t0, t0, -1\n  bnez t0, loop\necall";
    check_source(src, &probed).expect("probed loop program agrees");
}
