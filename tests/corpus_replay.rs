//! Replays the checked-in differential-fuzz corpus on every `cargo test`.
//!
//! `tests/corpus/*.asm` holds minimized generator outputs: programs that
//! either once exposed a divergence between the emulator oracle and a core
//! family, or that pin a structural feature of the generator (loops, leaf
//! calls, stack quads, the zero-length program). Each file is a complete
//! assembly source; every replay must agree across the oracle and all
//! three core families, exactly as in `tests/fuzz_differential.rs`.
//!
//! To regenerate the seed corpus after a deliberate generator change, run
//! `DKIP_SEED_CORPUS=1 cargo test -q --test corpus_replay` and commit the
//! rewritten `seed_*.asm` files (hand-written entries like `empty.asm` and
//! minimized `min_*.asm` reproductions are never touched).

use std::fs;
use std::path::PathBuf;

use dkip::riscv::GenConfig;
use dkip::sim::fuzz::{check_source, FuzzOptions};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// The pinned generator shapes behind the `seed_*.asm` entries, chosen to
/// cover every structural feature: straight-line ALU, bounded loops, leaf
/// calls, stack push/pop quads and scratch-window memory traffic.
fn seed_shapes() -> Vec<(&'static str, GenConfig)> {
    vec![
        (
            "seed_straightline",
            GenConfig {
                seed: 0xa11,
                blocks: 2,
                block_len: 16,
                max_trip: 0,
                leaves: 0,
            },
        ),
        (
            "seed_loops",
            GenConfig {
                seed: 0xb22,
                blocks: 6,
                block_len: 5,
                max_trip: 9,
                leaves: 0,
            },
        ),
        (
            "seed_calls",
            GenConfig {
                seed: 0xc33,
                blocks: 4,
                block_len: 8,
                max_trip: 3,
                leaves: 3,
            },
        ),
        (
            "seed_memory",
            GenConfig {
                seed: 0xd44,
                blocks: 3,
                block_len: 24,
                max_trip: 4,
                leaves: 1,
            },
        ),
        ("seed_default", GenConfig::new(0xe55)),
    ]
}

#[test]
fn every_corpus_program_agrees_across_emulator_and_all_three_cores() {
    if std::env::var("DKIP_SEED_CORPUS").as_deref() == Ok("1") {
        let dir = corpus_dir();
        fs::create_dir_all(&dir).expect("create tests/corpus");
        for (name, cfg) in seed_shapes() {
            let generated = cfg.generate();
            fs::write(dir.join(format!("{name}.asm")), &generated.source)
                .expect("write seed corpus entry");
        }
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "asm"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "the corpus must be seeded");
    let opts = FuzzOptions::default();
    for path in paths {
        let src = fs::read_to_string(&path).expect("read corpus entry");
        if let Err(mismatch) = check_source(&src, &opts) {
            panic!("{}: {mismatch}", path.display());
        }
    }
}
