//! Integration tests for the execution-driven RV64IM frontend
//! (`dkip-riscv`) and its plumbing into the simulator:
//!
//! * property tests round-tripping the supported RV64IM subset through
//!   assemble → encode → decode → disassemble → re-assemble,
//! * emulator runs pinning the final architectural register/memory state of
//!   every shipped kernel against its independent Rust reference model,
//! * determinism: the same kernel yields a bit-identical `MicroOp` stream
//!   and bit-identical `SimStats` on every core family.

use dkip::model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip::riscv::{
    assemble, decode, AluImmOp, AluOp, BranchCond, Inst, Kernel, KernelRun, MemWidth, Reg,
    RiscvStream, CODE_BASE, DATA_BASE,
};
use dkip::sim::{Machine, Workload};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Round-trip properties over the supported RV64IM subset.
// ---------------------------------------------------------------------------

/// Builds an arbitrary in-range instruction from raw strategy draws.
fn arb_inst(kind: usize, a: u8, b: u8, c: u8, raw: u32) -> Inst {
    let (rd, rs1, rs2) = (Reg::new(a), Reg::new(b), Reg::new(c));
    let imm12 = (raw % 4096) as i32 - 2048;
    match kind {
        0 => {
            let op = AluOp::ALL[raw as usize % AluOp::ALL.len()];
            Inst::Op { op, rd, rs1, rs2 }
        }
        1 => {
            let op = AluImmOp::ALL[c as usize % AluImmOp::ALL.len()];
            let imm = if op.is_shift() {
                (raw % (op.max_shamt() as u32 + 1)) as i32
            } else {
                imm12
            };
            Inst::OpImm { op, rd, rs1, imm }
        }
        2 => Inst::Lui {
            rd,
            imm20: (raw % (1 << 20)) as i32 - (1 << 19),
        },
        3 => Inst::Auipc {
            rd,
            imm20: (raw % (1 << 20)) as i32 - (1 << 19),
        },
        4 => {
            let (width, signed) = [
                (MemWidth::B, true),
                (MemWidth::H, true),
                (MemWidth::W, true),
                (MemWidth::D, true),
                (MemWidth::B, false),
                (MemWidth::H, false),
                (MemWidth::W, false),
            ][c as usize % 7];
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm: imm12,
            }
        }
        5 => {
            let width = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D][c as usize % 4];
            Inst::Store {
                width,
                rs2,
                rs1,
                imm: imm12,
            }
        }
        6 => {
            let cond = BranchCond::ALL[c as usize % BranchCond::ALL.len()];
            let imm = ((raw % 4096) as i32 - 2048) * 2;
            Inst::Branch {
                cond,
                rs1,
                rs2,
                imm,
            }
        }
        7 => Inst::Jal {
            rd,
            imm: ((raw % (1 << 20)) as i32 - (1 << 19)) * 2,
        },
        8 => Inst::Jalr {
            rd,
            rs1,
            imm: imm12,
        },
        _ => Inst::Ecall,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// encode → decode is the identity over the supported subset.
    #[test]
    fn encode_decode_round_trips(
        kind in 0usize..10,
        a in 0u8..32,
        b in 0u8..32,
        c in 0u8..32,
        raw in 0u32..0x0010_0000,
    ) {
        let inst = arb_inst(kind, a, b, c, raw);
        let word = inst.encode();
        prop_assert_eq!(decode(word), Ok(inst));
    }

    /// disassemble → assemble reproduces the instruction (and therefore the
    /// machine word), closing the assemble → encode → decode → disassemble
    /// loop.
    #[test]
    fn disassembly_reassembles(
        kind in 0usize..10,
        a in 0u8..32,
        b in 0u8..32,
        c in 0u8..32,
        raw in 0u32..0x0010_0000,
    ) {
        let inst = arb_inst(kind, a, b, c, raw);
        let text = inst.to_string();
        let program = assemble(&text, CODE_BASE).expect("disassembly must re-assemble");
        prop_assert_eq!(program.insts.len(), 1);
        prop_assert_eq!(program.insts[0], inst);
        prop_assert_eq!(program.words[0], inst.encode());
    }
}

// ---------------------------------------------------------------------------
// Emulator state pins: every shipped kernel against its reference model.
// ---------------------------------------------------------------------------

#[test]
fn kernels_pin_final_register_state() {
    for kernel in Kernel::ALL {
        let run = kernel.default_run();
        let mut emu = run.emulator();
        emu.run_to_halt();
        assert!(
            emu.ran_to_completion(),
            "{} must halt cleanly, not via the step backstop",
            run.name()
        );
        assert_eq!(
            emu.reg(Reg::A0),
            run.expected_result(),
            "{}: final a0 (checksum) mismatch",
            run.name()
        );
        // x0 stays hardwired and sp is balanced back to the top of memory.
        assert_eq!(emu.reg(Reg::ZERO), 0);
        assert_eq!(
            emu.reg(Reg::SP),
            dkip::riscv::MEM_SIZE,
            "{}: unbalanced stack",
            run.name()
        );
    }
}

#[test]
fn kernels_pin_final_memory_state() {
    // memcpy: dst[i] == src[i] == 3i + 1 for every copied doubleword.
    let run = Kernel::Memcpy.default_run();
    let mut emu = run.emulator();
    emu.run_to_halt();
    let n = run.size;
    for i in [0, 1, n / 2, n - 1] {
        let src = emu.read_u64(DATA_BASE + 8 * i);
        let dst = emu.read_u64(DATA_BASE + 8 * (n + i));
        assert_eq!(src, 3 * i + 1, "src[{i}]");
        assert_eq!(dst, src, "dst[{i}] copied");
    }

    // matmul: spot-check c[0][0] = sum_k a[0][k] * b[k][0].
    let run = Kernel::Matmul.default_run();
    let mut emu = run.emulator();
    emu.run_to_halt();
    let dim = run.size;
    let cells = dim * dim;
    let expected_c00: u64 = (0..dim).map(|k| k * (((k * dim) & 7) + 1)).sum();
    assert_eq!(
        emu.read_u64(DATA_BASE + 16 * cells),
        expected_c00,
        "c[0][0]"
    );

    // listwalk: node i holds [next, value] with next = &node[(i+7) % n].
    let run = Kernel::ListWalk.default_run();
    let mut emu = run.emulator();
    emu.run_to_halt();
    for i in [0, 1, run.size - 1] {
        let next = emu.read_u64(DATA_BASE + 16 * i);
        let value = emu.read_u64(DATA_BASE + 16 * i + 8);
        assert_eq!(
            next,
            DATA_BASE + 16 * ((i + 7) % run.size),
            "node[{i}].next"
        );
        assert_eq!(value, i, "node[{i}].value");
    }
}

// ---------------------------------------------------------------------------
// Determinism: bit-identical streams and stats.
// ---------------------------------------------------------------------------

#[test]
fn same_kernel_yields_bit_identical_microop_streams() {
    for kernel in Kernel::ALL {
        let run = kernel.default_run();
        let a: Vec<_> = RiscvStream::new(&run).collect();
        let b: Vec<_> = RiscvStream::new(&run).collect();
        assert_eq!(a, b, "{}: stream must be reproducible", run.name());
        // And through the Workload path, for any seed.
        let c: Vec<_> = Workload::from(run).stream(7).collect();
        assert_eq!(a, c, "{}: Workload::stream must match", run.name());
    }
}

#[test]
fn same_kernel_yields_bit_identical_simstats_on_every_family() {
    let mem = MemoryHierarchyConfig::paper_default();
    let machines = [
        Machine::Baseline(BaselineConfig::r10_64()),
        Machine::Kilo(KiloConfig::kilo_1024()),
        Machine::Dkip(DkipConfig::paper_default()),
    ];
    let workload = Workload::from(KernelRun::new(Kernel::Sieve, 500));
    for machine in machines {
        let a = machine.simulate(&mem, &workload, 1_000_000, 1);
        let b = machine.simulate(&mem, &workload, 1_000_000, 2);
        assert_eq!(
            a,
            b,
            "{}: SimStats must be identical (seed-independent)",
            machine.name()
        );
        assert!(a.committed > 0 && a.cycles > 0);
    }
}

#[test]
fn finite_streams_commit_exactly_their_dynamic_length() {
    let mem = MemoryHierarchyConfig::paper_default();
    let run = Kernel::BoxBlur.default_run();
    let dynamic_len = RiscvStream::new(&run).count() as u64;
    for machine in [
        Machine::Baseline(BaselineConfig::r10_64()),
        Machine::Kilo(KiloConfig::kilo_1024()),
        Machine::Dkip(DkipConfig::paper_default()),
    ] {
        let stats = machine.simulate(&mem, &Workload::from(run), 1_000_000, 1);
        assert_eq!(
            stats.committed,
            dynamic_len,
            "{}: every fetched instruction commits, then the machine drains",
            machine.name()
        );
        assert_eq!(stats.fetched, dynamic_len, "{}", machine.name());
    }
}
