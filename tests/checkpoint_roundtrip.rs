//! Checkpoint round-trip tests: snapshot every core family mid-run,
//! restore into a *fresh* core, and prove the continuation is bit-identical
//! to the uninterrupted run.
//!
//! This is the contract the sampled-simulation mode is built on
//! (`dkip::sim::sampled`): a detailed window seeded from a checkpoint must
//! behave exactly like the core that produced the checkpoint. The test
//! covers every job of all four golden suites, so each family, memory
//! configuration and workload source that the snapshots pin also pins its
//! own snapshot/restore path:
//!
//! * the uninterrupted reference is computed with the [`SweepRunner`] at
//!   1 and 8 worker threads (and the two must agree, as everywhere else),
//! * the interrupted run simulates to roughly half the reference's
//!   committed count, snapshots, restores into a core built from scratch,
//!   and continues on the same partially-consumed stream,
//! * the continuation's final [`SimStats::to_kv`] serialisation must equal
//!   the reference's byte for byte.

use dkip::dkip::DkipProcessor;
use dkip::kilo::build_kilo_core;
use dkip::mem::MemoryHierarchy;
use dkip::model::config::MemoryHierarchyConfig;
use dkip::model::SimStats;
use dkip::ooo::OooCore;
use dkip::sim::runner::{Job, Machine};
use dkip::sim::{suites, SweepRunner};

fn hierarchy(cfg: &MemoryHierarchyConfig) -> MemoryHierarchy {
    MemoryHierarchy::new(cfg.clone()).expect("golden memory configurations are valid")
}

/// Runs `job` in two segments with a snapshot/restore-into-fresh-core
/// boundary at `midpoint` committed instructions, returning the final
/// statistics of the continuation.
fn run_interrupted(job: &Job, midpoint: u64) -> SimStats {
    let mut stream = job.workload.stream(job.seed);
    match &job.machine {
        Machine::Baseline(cfg) => {
            let mut first = OooCore::from_baseline(cfg, hierarchy(&job.mem));
            let _ = first.run(&mut stream, midpoint);
            let snapshot = first.snapshot();
            drop(first);
            let mut fresh = OooCore::from_baseline(cfg, hierarchy(&job.mem));
            fresh.restore(&snapshot);
            fresh.run(&mut stream, job.budget)
        }
        Machine::Kilo(cfg) => {
            let mut first = build_kilo_core(cfg, hierarchy(&job.mem));
            let _ = first.run(&mut stream, midpoint);
            let snapshot = first.snapshot();
            drop(first);
            let mut fresh = build_kilo_core(cfg, hierarchy(&job.mem));
            fresh.restore(&snapshot);
            fresh.run(&mut stream, job.budget)
        }
        Machine::Dkip(cfg) => {
            let mut first = DkipProcessor::new(cfg.clone(), hierarchy(&job.mem));
            let _ = first.run(&mut stream, midpoint);
            let snapshot = first.snapshot();
            drop(first);
            let mut fresh = DkipProcessor::new(cfg.clone(), hierarchy(&job.mem));
            fresh.restore(&snapshot);
            fresh.run(&mut stream, job.budget)
        }
    }
}

/// Round-trips every job of one golden suite against SweepRunner references
/// computed at 1 and 8 threads.
fn check_suite(jobs: &[Job]) {
    let serial = SweepRunner::new(1).run(jobs);
    let eight = SweepRunner::new(8).run(jobs);
    for (job, (reference, parallel)) in jobs.iter().zip(serial.iter().zip(&eight)) {
        assert_eq!(
            reference.stats.to_kv(),
            parallel.stats.to_kv(),
            "{}: reference must be thread-count invariant",
            job.label
        );
        let midpoint = (reference.stats.committed / 2).max(1);
        let continued = run_interrupted(job, midpoint);
        assert_eq!(
            continued.to_kv(),
            reference.stats.to_kv(),
            "{}: continuation after snapshot/restore at {} committed \
             instructions must be bit-identical to the uninterrupted run",
            job.label,
            midpoint
        );
    }
}

#[test]
fn baseline_suite_roundtrips_bit_identically() {
    check_suite(&suites::golden_baseline_jobs());
}

#[test]
fn kilo_suite_roundtrips_bit_identically() {
    check_suite(&suites::golden_kilo_jobs());
}

#[test]
fn dkip_suite_roundtrips_bit_identically() {
    check_suite(&suites::golden_dkip_jobs());
}

#[test]
fn riscv_suite_roundtrips_bit_identically() {
    check_suite(&suites::golden_riscv_jobs());
}

/// A snapshot is an independent deep copy: mutating the restored core must
/// not disturb the core that produced the checkpoint (and vice versa).
#[test]
fn snapshots_are_independent_of_the_source_core() {
    let job = &suites::golden_dkip_jobs()[0];
    let Machine::Dkip(cfg) = &job.machine else {
        panic!("dkip suite starts with a dkip job");
    };
    let mut stream_a = job.workload.stream(job.seed);
    let mut original = DkipProcessor::new(cfg.clone(), hierarchy(&job.mem));
    let _ = original.run(&mut stream_a, 1_000);
    let snapshot = original.snapshot();

    // Checkpoint the full simulation state: core snapshot + stream clone.
    // Then drive the restored copy far ahead on its own stream.
    let mut stream_b = stream_a.clone();
    let mut copy = snapshot.to_processor();
    let _ = copy.run(&mut stream_b, 3_000);

    // The original must continue exactly as if the copy never existed.
    let undisturbed = original.run(&mut stream_a, job.budget);
    let mut stream_c = job.workload.stream(job.seed);
    let mut reference = DkipProcessor::new(cfg.clone(), hierarchy(&job.mem));
    let _ = reference.run(&mut stream_c, 1_000);
    let expected = reference.run(&mut stream_c, job.budget);
    assert_eq!(undisturbed.to_kv(), expected.to_kv());
}
