# generated RV64IM program: seed=0xb22 blocks=6 block_len=5 max_trip=9 leaves=0
  # prologue: bases, loop counters, pool seeds
  li s0, 65536
  li s1, 67584
  li s2, 4
  li s3, 9
  li t0, 1446893241
  li t1, -347743587
  li t2, 1240599453
  li a0, 990036192
  li a1, 57232736
  li a2, -433643014
  li a4, 1025575907
  li a7, -1164552323
  li t3, 1194422979
  li t4, 1418417877
  li t5, -985798020
  li t6, 826512888
b0:
  sb a7, 868(s1)
  subw t4, zero, t6
  sraiw t5, a5, 8
  add a2, a5, a1
  bne s3, t5, b4
b1:
  auipc a4, 426800
  srai a0, t6, 43
  auipc a7, -298683
  addi s2, s2, -1
  bgtz s2, b0
b2:
  slti a6, t0, 50
b3:
  or t0, a3, sp
  sh a5, 1034(s0)
  addi a2, a7, 1853
  addi s3, s3, -1
  bgtz s3, b1
b4:
  addi a1, a2, 745
  auipc t4, 144063
b5:
  addi sp, sp, -16
  sd a4, 8(sp)
  ld a2, 8(sp)
  addi sp, sp, 16
exit:
  ecall
