# generated RV64IM program: seed=0xc33 blocks=4 block_len=8 max_trip=3 leaves=3
  # prologue: bases, loop counters, pool seeds
  li s0, 65536
  li s1, 67584
  li s2, 2
  li s3, 2
  li t0, 1645315665
  li t1, 1770995019
  li t2, 924858587
  li a1, -1261748818
  li a3, -1401580286
  li a4, -1170170595
  li a5, 436430351
  li a6, 434710958
  li a7, -1768427464
  li t3, 339111913
  li t5, -183913309
  li t6, 549034911
b0:
  addi sp, sp, -16
  sd t5, 8(sp)
  ld a5, 8(sp)
  addi sp, sp, 16
  sw t2, 836(s1)
  add a1, s2, a7
  sh a6, 1484(s0)
  srliw t3, t5, 23
  sb zero, 2009(s1)
  sw a2, 1416(s1)
  blt a2, a2, b1
b1:
  addi s2, s2, -1
  bgtz s2, b1
b2:
  lw t5, 302(s1)
  srliw t1, zero, 19
  and t4, zero, t0
  lhu a2, 1527(s0)
  j exit
b3:
  addi s3, s3, -1
  bgtz s3, b2
exit:
  ecall
leaf0:
  divu t3, a6, zero
  mulw a6, a6, t2
  ret
leaf1:
  sll t6, a3, a7
  ret
leaf2:
  sll t4, a0, a6
  ret
