# generated RV64IM program: seed=0xa11 blocks=2 block_len=16 max_trip=0 leaves=0
  # prologue: bases, loop counters, pool seeds
  li s0, 65536
  li s1, 67584
  li t0, 1507469187
  li t1, -2030207155
  li a0, 904131503
  li a2, -17834978
  li a4, -1350118662
  li a7, 336940446
  li t4, -1773815133
  li t5, -1573634237
  li t6, 406895330
b0:
  sw s0, 1374(s0)
  addi sp, sp, -16
  sd t0, 8(sp)
  ld t3, 8(sp)
  addi sp, sp, 16
  slt t3, zero, a1
  slliw a6, a0, 24
  andi a7, t5, 944
  mulh t6, a7, a6
  j exit
b1:
  sra a4, t4, t1
  srai a2, zero, 34
  sh a3, 552(s1)
exit:
  ecall
