# generated RV64IM program: seed=0xd44 blocks=3 block_len=24 max_trip=4 leaves=1
  # prologue: bases, loop counters, pool seeds
  li s0, 65536
  li s1, 67584
  li t0, 1287279221
  li t1, -301411522
  li t2, -1647244855
  li a0, -746960220
  li a4, -364825631
  li a5, -1951421385
  li a6, -1494699582
  li a7, -1592927511
  li t3, 90815612
  li t4, 1795885427
  li t5, 24824906
b0:
  add a5, a3, t3
  mulh t4, t0, s0
  auipc t2, -484402
  lui t4, 222629
  andi t2, s3, 1500
  lw t2, 248(s1)
  addiw t5, t0, 1606
  slli t4, sp, 58
  slti t0, a2, -150
  srai a6, a2, 21
  sd a7, 992(s0)
  mulw a1, a2, a3
  call leaf0
  sh a6, 416(s0)
  sd t3, 1808(s0)
  call leaf0
  slliw a7, t1, 25
  srliw t1, a1, 24
  sraiw a1, t0, 22
  addi sp, sp, -16
  sd a1, 8(sp)
  ld t0, 8(sp)
  addi sp, sp, 16
  sd t5, 888(s0)
  sh s0, 1536(s1)
  ori a6, t2, -300
  srl t4, t1, a4
  j b2
b1:
  srli t0, a6, 45
  sraiw a1, t3, 2
  auipc t3, 302737
  sh a7, 1816(s1)
  lb a4, 1182(s1)
  or t1, a7, a3
  sw t6, 700(s1)
  mul t1, s3, a3
  call leaf0
  lhu t4, 426(s0)
  ori t5, t1, 51
  srl t0, t1, t6
  addi sp, sp, -16
  sd t1, 8(sp)
  ld a6, 8(sp)
  addi sp, sp, 16
  mul t1, t6, zero
  lb a6, 1164(s0)
  lw t2, 576(s1)
  sd a4, 1904(s0)
  rem a0, t5, a1
  lb t1, 1425(s0)
  lw t4, 1031(s1)
  bne a3, a6, exit
b2:
  or a4, a6, a7
  mul t0, a7, t1
  mulhu t3, t4, a2
  srlw a1, t4, s0
  sb t5, 1699(s0)
  slti a6, a0, -196
  slli t2, t4, 48
  slli t2, a6, 26
  addi t1, t6, 876
  ori a4, a5, -988
  lh t4, 1420(s1)
  remw a1, a2, a7
  andi a4, t6, 1748
  xori t6, a4, -1165
  auipc a1, 503305
  sra a3, a7, t2
  call leaf0
exit:
  ecall
leaf0:
  sllw a6, t2, a7
  divw a6, t6, t2
  ret
