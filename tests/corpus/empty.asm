# the zero-length program: the stream is a single cracked Nop (ecall);
# all three cores must drain it cleanly (PR 5 event-driven clock gotcha).
ecall
