# generated RV64IM program: seed=0xe55 blocks=8 block_len=12 max_trip=24 leaves=2
  # prologue: bases, loop counters, pool seeds
  li s0, 65536
  li s1, 67584
  li s2, 23
  li t0, 217391487
  li t1, -591891387
  li t2, 655692208
  li a0, -1916093545
  li a1, 736097505
  li a5, -266144977
  li a6, -1585166104
  li a7, -823579265
  li t3, -1993780530
  li t4, 851181497
b0:
  or t6, s1, a2
  lui t1, 147034
  rem t4, a0, a1
  rem a2, a2, a0
  remu a5, t3, t6
  slliw a6, a7, 31
  addi sp, sp, -16
  sd t0, 8(sp)
  ld a0, 8(sp)
  addi sp, sp, 16
  sub t6, t5, a7
  j b6
b1:
  slt t4, s1, t4
  sltiu t1, a5, 1290
  srai a6, a6, 13
  ld t0, 1592(s0)
  lbu t1, 1034(s1)
  slt t4, a6, a5
  lui a0, 320746
  sltu t2, t3, t2
  srli t2, t0, 50
  srli t0, zero, 1
  ld t4, 400(s0)
b2:
  slti t0, s3, -671
  addi sp, sp, -16
  sd t2, 8(sp)
  ld t1, 8(sp)
  addi sp, sp, 16
  subw a7, a1, t2
  sd s2, 827(s1)
  sb t3, 1270(s1)
  or a3, s3, a1
  sraiw t5, a4, 4
  sltu a4, a3, a1
  mulhu a4, a0, a5
  call leaf1
  lwu a7, 1292(s0)
  srliw t4, a6, 6
b3:
  lui a3, -313858
  sltiu a3, sp, 2024
  call leaf0
  sllw a6, a3, a3
  mulw t2, a7, a4
  rem a7, t4, t0
  bgeu zero, t2, b4
b4:
  xor t0, sp, t2
  sw a6, 1132(s0)
  subw t1, a7, t6
  lui a5, 185800
  xor a7, a2, t0
  rem t6, t3, s3
  andi a1, s3, -414
  slt t6, t3, t5
  j b5
b5:
  slliw t5, t5, 14
  auipc t2, -458728
  and t1, a1, a5
  lwu t6, 1184(s0)
  lh t5, 1032(s1)
  srl a6, a6, zero
  sd a5, 1861(s0)
  addi sp, sp, -16
  sd t1, 8(sp)
  ld t4, 8(sp)
  addi sp, sp, 16
  subw a7, t0, a2
  remu t5, t3, a7
  remu a6, a1, t3
  bge a1, a7, b7
b6:
  addi sp, sp, -16
  sd a3, 8(sp)
  ld a6, 8(sp)
  addi sp, sp, 16
  ld a0, 872(s0)
  sw a1, 812(s0)
  lw t1, 928(s1)
  andi a4, sp, 118
  sll t6, t4, zero
  call leaf0
  lhu t2, 24(s1)
  andi a6, zero, -1582
  mulw a1, t5, s1
  addi s2, s2, -1
  bgtz s2, b5
b7:
  slli t4, a5, 10
  srai a7, a0, 9
  srlw t0, a6, a4
  sw t6, 2012(s0)
  divw t6, a1, t5
  sd s1, 280(s0)
  sraw t2, a1, t6
  srlw t3, a6, t6
  j exit
exit:
  ecall
leaf0:
  mulhu t3, s1, t2
  remw t2, a4, a4
  ret
leaf1:
  sll a7, a3, s3
  ret
