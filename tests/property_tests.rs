//! Property-based tests over the core data structures and the workload
//! generators.

use dkip::bpred::{BranchPredictor, PerceptronPredictor};
use dkip::mem::SetAssocCache;
use dkip::model::config::LlibConfig;
use dkip::model::stats::Histogram;
use dkip::model::{ArchReg, TOTAL_ARCH_REGS};
use dkip::dkip::{CheckpointStack, Llbv, Llrf, LowLocalityWriter};
use dkip::trace::{Benchmark, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every micro-op the generator emits is well formed, for any benchmark
    /// and seed.
    #[test]
    fn generated_micro_ops_are_always_well_formed(seed in 0u64..1_000, bench_idx in 0usize..26) {
        let bench = Benchmark::all()[bench_idx];
        let ops: Vec<_> = TraceGenerator::new(bench, seed).take(500).collect();
        prop_assert_eq!(ops.len(), 500);
        for (i, op) in ops.iter().enumerate() {
            prop_assert!(op.is_well_formed(), "{}: {}", bench.name(), op);
            prop_assert_eq!(op.seq, i as u64);
        }
    }

    /// A cache never reports more hits than accesses, and its contents are
    /// consistent with `contains`.
    #[test]
    fn cache_hit_accounting_is_consistent(addrs in proptest::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut cache = SetAssocCache::new(4 * 1024, 2, 64).unwrap();
        for &addr in &addrs {
            cache.access(addr, false);
            prop_assert!(cache.contains(addr), "a just-accessed line must be resident");
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// The histogram preserves every recorded sample exactly once.
    #[test]
    fn histogram_conserves_samples(values in proptest::collection::vec(0u64..5_000, 1..500)) {
        let mut hist = Histogram::new(50, 1_000);
        for &v in &values {
            hist.record(v);
        }
        let bucket_sum: u64 = hist.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_sum + hist.overflow_count(), values.len() as u64);
        prop_assert_eq!(hist.total_samples(), values.len() as u64);
        prop_assert_eq!(hist.max_value(), *values.iter().max().unwrap());
    }

    /// The LLBV marked count always equals the number of registers whose bit
    /// is set, under any interleaving of marks and clears.
    #[test]
    fn llbv_marked_count_matches_bits(ops in proptest::collection::vec((0usize..TOTAL_ARCH_REGS, any::<bool>()), 1..200)) {
        let mut llbv = Llbv::new();
        for (flat, set) in ops {
            let reg = ArchReg::from_flat_index(flat);
            if set {
                llbv.mark(reg, LowLocalityWriter::Load(flat as u64));
            } else {
                llbv.clear(reg);
            }
        }
        let actual = (0..TOTAL_ARCH_REGS)
            .filter(|&i| llbv.is_long_latency(ArchReg::from_flat_index(i)))
            .count();
        prop_assert_eq!(actual, llbv.marked_count());
    }

    /// LLRF allocations never exceed capacity and occupancy is conserved by
    /// free.
    #[test]
    fn llrf_allocation_is_conserved(requests in 1usize..200) {
        let cfg = LlibConfig {
            capacity: 256,
            insertion_rate: 4,
            extraction_rate: 4,
            llrf_banks: 8,
            llrf_regs_per_bank: 8,
        };
        let mut llrf = Llrf::new(&cfg);
        let mut slots = Vec::new();
        for _ in 0..requests {
            match llrf.allocate() {
                Some(slot) => slots.push(slot),
                None => break,
            }
        }
        prop_assert!(slots.len() <= llrf.capacity());
        prop_assert_eq!(llrf.occupied(), slots.len());
        for slot in slots {
            llrf.free(slot);
        }
        prop_assert_eq!(llrf.occupied(), 0);
    }

    /// The checkpoint stack never exceeds its capacity and always keeps a
    /// recovery point while instructions are outstanding.
    #[test]
    fn checkpoint_stack_respects_capacity(events in proptest::collection::vec(0u8..3, 1..300)) {
        let mut stack = CheckpointStack::new(4);
        let mut live_epochs: Vec<u64> = Vec::new();
        for event in events {
            match event {
                0 => {
                    if let Some(epoch) = stack.take(0) {
                        live_epochs.push(epoch);
                    }
                }
                1 => {
                    if let Some(&epoch) = live_epochs.last() {
                        stack.register_instruction(epoch);
                    }
                }
                _ => {
                    if let Some(&epoch) = live_epochs.first() {
                        stack.complete_instruction(epoch);
                    }
                }
            }
            prop_assert!(stack.len() <= 4);
            if !live_epochs.is_empty() {
                prop_assert!(!stack.is_empty());
            }
        }
    }

    /// The perceptron predictor's misprediction count never exceeds its
    /// prediction count and it eventually learns a constant branch.
    #[test]
    fn perceptron_counters_are_sane(outcomes in proptest::collection::vec(any::<bool>(), 1..500)) {
        let mut pred = PerceptronPredictor::new(64, 16);
        for &taken in &outcomes {
            let guess = pred.predict(0xabc0);
            pred.update(0xabc0, taken, guess);
        }
        prop_assert_eq!(pred.predictions(), outcomes.len() as u64);
        prop_assert!(pred.mispredictions() <= pred.predictions());
    }
}
