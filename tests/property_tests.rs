//! Property-based tests over the core data structures and the workload
//! generators.

use dkip::bpred::{BranchPredictor, PerceptronPredictor};
use dkip::dkip::{CheckpointStack, Llbv, Llrf, LowLocalityWriter};
use dkip::mem::SetAssocCache;
use dkip::model::config::LlibConfig;
use dkip::model::stats::Histogram;
use dkip::model::{ArchReg, TOTAL_ARCH_REGS};
use dkip::trace::{Benchmark, TraceGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every micro-op the generator emits is well formed, for any benchmark
    /// and seed.
    #[test]
    fn generated_micro_ops_are_always_well_formed(seed in 0u64..1_000, bench_idx in 0usize..26) {
        let bench = Benchmark::all()[bench_idx];
        let ops: Vec<_> = TraceGenerator::new(bench, seed).take(500).collect();
        prop_assert_eq!(ops.len(), 500);
        for (i, op) in ops.iter().enumerate() {
            prop_assert!(op.is_well_formed(), "{}: {}", bench.name(), op);
            prop_assert_eq!(op.seq, i as u64);
        }
    }

    /// A cache never reports more hits than accesses, and its contents are
    /// consistent with `contains`.
    #[test]
    fn cache_hit_accounting_is_consistent(addrs in proptest::collection::vec(0u64..(1 << 20), 1..300)) {
        let mut cache = SetAssocCache::new(4 * 1024, 2, 64).unwrap();
        for &addr in &addrs {
            cache.access(addr, false);
            prop_assert!(cache.contains(addr), "a just-accessed line must be resident");
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// The histogram preserves every recorded sample exactly once.
    #[test]
    fn histogram_conserves_samples(values in proptest::collection::vec(0u64..5_000, 1..500)) {
        let mut hist = Histogram::new(50, 1_000);
        for &v in &values {
            hist.record(v);
        }
        let bucket_sum: u64 = hist.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(bucket_sum + hist.overflow_count(), values.len() as u64);
        prop_assert_eq!(hist.total_samples(), values.len() as u64);
        prop_assert_eq!(hist.max_value(), *values.iter().max().unwrap());
    }

    /// The LLBV marked count always equals the number of registers whose bit
    /// is set, under any interleaving of marks and clears.
    #[test]
    fn llbv_marked_count_matches_bits(ops in proptest::collection::vec((0usize..TOTAL_ARCH_REGS, any::<bool>()), 1..200)) {
        let mut llbv = Llbv::new();
        for (flat, set) in ops {
            let reg = ArchReg::from_flat_index(flat);
            if set {
                llbv.mark(reg, LowLocalityWriter::Load(flat as u64));
            } else {
                llbv.clear(reg);
            }
        }
        let actual = (0..TOTAL_ARCH_REGS)
            .filter(|&i| llbv.is_long_latency(ArchReg::from_flat_index(i)))
            .count();
        prop_assert_eq!(actual, llbv.marked_count());
    }

    /// LLRF allocations never exceed capacity and occupancy is conserved by
    /// free.
    #[test]
    fn llrf_allocation_is_conserved(requests in 1usize..200) {
        let cfg = LlibConfig {
            capacity: 256,
            insertion_rate: 4,
            extraction_rate: 4,
            llrf_banks: 8,
            llrf_regs_per_bank: 8,
        };
        let mut llrf = Llrf::new(&cfg);
        let mut slots = Vec::new();
        for _ in 0..requests {
            match llrf.allocate() {
                Some(slot) => slots.push(slot),
                None => break,
            }
        }
        prop_assert!(slots.len() <= llrf.capacity());
        prop_assert_eq!(llrf.occupied(), slots.len());
        for slot in slots {
            llrf.free(slot);
        }
        prop_assert_eq!(llrf.occupied(), 0);
    }

    /// The checkpoint stack never exceeds its capacity and always keeps a
    /// recovery point while instructions are outstanding.
    #[test]
    fn checkpoint_stack_respects_capacity(events in proptest::collection::vec(0u8..3, 1..300)) {
        let mut stack = CheckpointStack::new(4);
        let mut live_epochs: Vec<u64> = Vec::new();
        for event in events {
            match event {
                0 => {
                    if let Some(epoch) = stack.take(0) {
                        live_epochs.push(epoch);
                    }
                }
                1 => {
                    if let Some(&epoch) = live_epochs.last() {
                        stack.register_instruction(epoch);
                    }
                }
                _ => {
                    if let Some(&epoch) = live_epochs.first() {
                        stack.complete_instruction(epoch);
                    }
                }
            }
            prop_assert!(stack.len() <= 4);
            if !live_epochs.is_empty() {
                prop_assert!(!stack.is_empty());
            }
        }
    }

    /// The perceptron predictor's misprediction count never exceeds its
    /// prediction count and it eventually learns a constant branch.
    #[test]
    fn perceptron_counters_are_sane(outcomes in proptest::collection::vec(any::<bool>(), 1..500)) {
        let mut pred = PerceptronPredictor::new(64, 16);
        for &taken in &outcomes {
            let guess = pred.predict(0xabc0);
            pred.update(0xabc0, taken, guess);
        }
        prop_assert_eq!(pred.predictions(), outcomes.len() as u64);
        prop_assert!(pred.mispredictions() <= pred.predictions());
    }

    /// Perceptron weights saturate at the 8-bit bounds under any training
    /// sequence, across branches and history lengths.
    #[test]
    fn perceptron_weights_stay_saturated(
        outcomes in proptest::collection::vec((0u64..8, any::<bool>()), 1..600),
        history_len in 1usize..32,
    ) {
        let mut pred = PerceptronPredictor::new(32, history_len);
        for &(branch, taken) in &outcomes {
            let pc = 0x4000 + branch * 4;
            let guess = pred.predict(pc);
            pred.update(pc, taken, guess);
        }
        let max = pred.max_abs_weight();
        prop_assert!(
            max <= PerceptronPredictor::WEIGHT_MIN.abs().max(PerceptronPredictor::WEIGHT_MAX),
            "weight magnitude {} escaped the saturation bounds",
            max
        );
    }

    /// Hammering one branch with a constant outcome drives the bias weight
    /// into saturation but never past it, and the predictor ends up always
    /// predicting the constant direction.
    #[test]
    fn perceptron_saturates_and_learns_constant_branches(taken in any::<bool>(), extra in 0u32..200) {
        let mut pred = PerceptronPredictor::new(64, 8);
        for _ in 0..(600 + extra) {
            let guess = pred.predict(0x1234);
            pred.update(0x1234, taken, guess);
        }
        prop_assert!(pred.max_abs_weight() <= 128);
        // After this much constant training the next prediction must match.
        prop_assert_eq!(pred.predict(0x1234), taken);
    }
}

/// Reference LRU model for one cache set: a most-recent-last list of tags.
fn lru_reference(addrs: &[u64], assoc: usize, stride: u64) -> Vec<u64> {
    let mut lru: Vec<u64> = Vec::new();
    for &addr in addrs {
        let tag = addr / stride;
        if let Some(pos) = lru.iter().position(|&t| t == tag) {
            lru.remove(pos);
        } else if lru.len() == assoc {
            lru.remove(0);
        }
        lru.push(tag);
    }
    lru
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A set-associative cache evicts in exact LRU order: confining all
    /// accesses to one set, the resident lines always match a reference
    /// most-recently-used list.
    #[test]
    fn cache_eviction_follows_true_lru(picks in proptest::collection::vec(0u64..12, 1..200)) {
        const LINE: u64 = 64;
        const ASSOC: usize = 4;
        let mut cache = SetAssocCache::new(8 * 1024, ASSOC, LINE as usize).unwrap();
        let num_sets = cache.num_sets() as u64;
        let stride = num_sets * LINE; // same set, different tag
        let addrs: Vec<u64> = picks.iter().map(|&k| k * stride).collect();
        for &addr in &addrs {
            cache.access(addr, false);
        }
        let resident = lru_reference(&addrs, ASSOC, stride);
        for k in 0u64..12 {
            let addr = k * stride;
            prop_assert_eq!(
                cache.contains(addr),
                resident.contains(&k),
                "tag {} residency diverged from the LRU reference", k
            );
        }
    }

    /// Hit-after-fill: once a set has been filled with at most `assoc`
    /// distinct lines, re-accessing any of them hits without evicting.
    #[test]
    fn cache_hits_after_fill_without_eviction(perm in proptest::sample::subsequence(vec![0u64, 1, 2, 3], 1..5)) {
        const LINE: u64 = 64;
        let mut cache = SetAssocCache::new(8 * 1024, 4, LINE as usize).unwrap();
        let stride = cache.num_sets() as u64 * LINE;
        for &k in &perm {
            prop_assert!(!cache.access(k * stride, false), "first touch must miss");
        }
        let misses_after_fill = cache.misses();
        for &k in perm.iter().rev() {
            prop_assert!(cache.access(k * stride, true), "refill within assoc must hit");
        }
        prop_assert_eq!(cache.misses(), misses_after_fill);
        prop_assert_eq!(cache.hits(), perm.len() as u64);
    }

    /// Capacity conservation: the number of resident lines never exceeds
    /// the cache's line capacity, no matter the access pattern.
    #[test]
    fn cache_never_exceeds_capacity(addrs in proptest::collection::vec(0u64..(1 << 16), 1..400)) {
        const LINE: usize = 64;
        let mut cache = SetAssocCache::new(4 * 1024, 2, LINE).unwrap();
        let line_capacity = cache.capacity() / LINE;
        for &addr in &addrs {
            cache.access(addr, addr % 3 == 0);
            let resident = (0u64..(1 << 16) / LINE as u64)
                .filter(|&block| cache.contains(block * LINE as u64))
                .count();
            prop_assert!(
                resident <= line_capacity,
                "{} resident lines exceed the {}-line capacity", resident, line_capacity
            );
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }
}
