//! Chaos-engineering contract tests: deterministic fault injection
//! (`dkip::sim::chaos`) against the runner and store hardening.
//!
//! The invariants under test, shared with `make chaos-check`:
//!
//! * a panicking or failing job becomes a recorded `JobFailure`, never a
//!   sweep abort,
//! * store faults degrade caching, never correctness — any result that is
//!   produced at all is byte-identical to a fault-free run, and no
//!   partial cache entry is ever left behind,
//! * disarming heals: a fault-free re-run over the same store converges
//!   to a fully green, fully warm, byte-identical sweep.
//!
//! Every test serialises on one lock: the chaos registry is process-wide,
//! so an armed fault in one test must not leak into another running
//! concurrently. Runners are serial so fault-consultation order (and
//! therefore `firstK` behaviour) is deterministic.

use std::path::PathBuf;
use std::sync::Mutex;

use dkip::sim::chaos;
use dkip::sim::runner::results_to_kv;
use dkip::sim::store::ResultStore;
use dkip::sim::{suites, Job, SweepRunner};

/// Serialises every test in this binary: chaos arming is process-global.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Disarms on drop, so a failing assertion cannot leave faults armed for
/// the next test.
struct Armed;

impl Armed {
    fn arm(spec: &str) -> Armed {
        chaos::arm(spec).expect("valid fault spec");
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        chaos::disarm();
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dkip-chaos-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn kilo_jobs(budget: u64) -> Vec<Job> {
    suites::golden_suite_jobs("kilo", Some(budget)).expect("kilo suite exists")
}

/// Recursively counts files whose name contains `needle` under `dir`.
fn files_containing(dir: &PathBuf, needle: &str) -> usize {
    let mut count = 0;
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            count += files_containing(&path, needle);
        } else if path
            .file_name()
            .is_some_and(|n| n.to_str().is_some_and(|n| n.contains(needle)))
        {
            count += 1;
        }
    }
    count
}

#[test]
fn injected_job_panics_are_isolated_and_reported() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let jobs = kilo_jobs(1_000);
    let reference = results_to_kv(&SweepRunner::serial().run(&jobs));
    let report = {
        let _armed = Armed::arm("job.panic:first1:0");
        SweepRunner::serial().run_report(&jobs)
    };
    assert_eq!(report.failures.len(), 1, "exactly the first job fails");
    assert_eq!(report.results.len(), jobs.len() - 1);
    let failure = &report.failures[0];
    assert_eq!(failure.index, 0);
    assert_eq!(failure.label, jobs[0].label);
    assert!(
        failure.message.contains(chaos::CHAOS_TAG),
        "failure carries the injected panic payload: {}",
        failure.message
    );
    assert!(!report.is_complete());
    // Disarmed, the same sweep heals completely.
    let healed = SweepRunner::serial().run_report(&jobs);
    assert!(healed.is_complete());
    assert_eq!(results_to_kv(&healed.results), reference);
}

#[test]
fn metrics_write_faults_become_job_failures_not_aborts() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let dir = scratch("metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let metrics_path = dir.join("metrics.csv");
    let mut job = kilo_jobs(1_000).remove(0);
    job.metrics = Some(dkip::model::MetricsConfig {
        path: metrics_path.to_str().unwrap().to_owned(),
        interval: 200,
    });
    let report = {
        let _armed = Armed::arm("metrics.write:1:0");
        SweepRunner::serial().run_report(std::slice::from_ref(&job))
    };
    assert_eq!(report.failures.len(), 1);
    assert!(
        report.failures[0].message.contains("cannot write"),
        "metrics-write failures are recorded, not fatal: {}",
        report.failures[0].message
    );
    // Disarmed, the probed job succeeds and writes its file.
    let healed = SweepRunner::serial().run_report(std::slice::from_ref(&job));
    assert!(healed.is_complete());
    assert_eq!(files_containing(&dir, "metrics"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transient_store_write_faults_retry_and_recover() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let job = kilo_jobs(800).remove(0);
    let store = ResultStore::open(scratch("transient")).unwrap();
    {
        // Two injected failures, three write attempts: the insert rides
        // out the transient and the entry lands on disk.
        let _armed = Armed::arm("store.write:first2:0");
        let report = SweepRunner::serial()
            .with_store(store.clone())
            .run_report(std::slice::from_ref(&job));
        assert!(report.is_complete());
        assert_eq!(report.misses, 1);
    }
    assert_eq!(store.write_errors(), 0, "the retry absorbed the transient");
    assert!(!store.degraded());
    let warm = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(std::slice::from_ref(&job));
    assert_eq!(warm.hits, 1, "the retried write produced a servable entry");
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn exhausted_store_writes_degrade_to_uncached_but_stay_correct() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let jobs = kilo_jobs(1_200);
    let reference = results_to_kv(&SweepRunner::serial().run(&jobs));
    let dir = scratch("degrade");
    let store = ResultStore::open(&dir).unwrap();
    let report = {
        let _armed = Armed::arm("store.write:1:11");
        SweepRunner::serial()
            .with_store(store.clone())
            .run_report(&jobs)
    };
    assert!(report.is_complete(), "write faults never fail jobs");
    assert_eq!(
        results_to_kv(&report.results),
        reference,
        "uncached results are byte-identical to a fault-free run"
    );
    assert_eq!(store.write_errors(), 1, "one exhausted write trips degrade");
    assert!(store.degraded());
    assert_eq!(files_containing(&dir, ".entry"), 0, "no entries written");
    assert_eq!(files_containing(&dir, ".tmp"), 0, "no torn temp files");
    // A fresh open over the same directory (faults disarmed) writes again.
    let healed_store = ResultStore::open(&dir).unwrap();
    let cold = SweepRunner::serial()
        .with_store(healed_store.clone())
        .run_report(&jobs);
    assert_eq!(cold.misses, jobs.len() as u64);
    let warm = SweepRunner::serial()
        .with_store(healed_store)
        .run_report(&jobs);
    assert_eq!(warm.hits, jobs.len() as u64, "the heal run is fully warm");
    assert_eq!(results_to_kv(&warm.results), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_read_faults_force_byte_identical_recomputes() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let jobs = kilo_jobs(900);
    let store = ResultStore::open(scratch("readfault")).unwrap();
    let cold = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    let reference = results_to_kv(&cold.results);
    let faulted = {
        let _armed = Armed::arm("store.read:1:13");
        SweepRunner::serial()
            .with_store(store.clone())
            .run_report(&jobs)
    };
    assert_eq!(faulted.hits, 0, "every lookup was injected to fail");
    assert_eq!(faulted.misses, jobs.len() as u64);
    assert_eq!(
        results_to_kv(&faulted.results),
        reference,
        "recomputes under read faults match the cached results exactly"
    );
    // Disarmed, the (rewritten) entries serve hits again.
    let warm = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    assert_eq!(warm.hits, jobs.len() as u64);
    assert_eq!(results_to_kv(&warm.results), reference);
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn chaos_campaign_heals_to_a_fully_green_warm_sweep() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let jobs = kilo_jobs(1_100);
    let reference = results_to_kv(&SweepRunner::serial().run(&jobs));
    let store = ResultStore::open(scratch("heal")).unwrap();
    let campaign = {
        let _armed = Armed::arm("job.panic:first2:0");
        SweepRunner::serial()
            .with_store(store.clone())
            .run_report(&jobs)
    };
    assert_eq!(campaign.failures.len(), 2, "the first two jobs died");
    assert_eq!(campaign.results.len(), jobs.len() - 2);
    // Heal: disarmed re-run over the same store hits the survivors,
    // computes only the casualties, and matches the reference exactly.
    let healed = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    assert!(healed.is_complete());
    assert_eq!(
        (healed.hits, healed.misses),
        (jobs.len() as u64 - 2, 2),
        "only the failed jobs recompute during the heal"
    );
    assert_eq!(results_to_kv(&healed.results), reference);
    let warm = SweepRunner::serial()
        .with_store(store.clone())
        .run_report(&jobs);
    assert_eq!(
        warm.hits,
        jobs.len() as u64,
        "second heal pass is fully warm"
    );
    let _ = std::fs::remove_dir_all(store.root());
}

#[test]
fn run_panics_with_a_failure_summary_when_jobs_fail() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let jobs = kilo_jobs(800);
    let payload = {
        let _armed = Armed::arm("job.panic:1:0");
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SweepRunner::serial().run(&jobs)
        }))
        .expect_err("run() must refuse a partial sweep")
    };
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("sweep jobs failed"),
        "figure binaries die with a counted summary, got: {message}"
    );
}

#[test]
fn fault_specs_are_validated_through_the_public_api() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    assert!(chaos::arm("job.panic:1:0").is_ok());
    chaos::disarm();
    assert!(chaos::arm("job.reboot:1:0").is_err(), "unknown point");
    assert!(chaos::arm("job.panic:2:0").is_err(), "rate out of range");
    assert!(chaos::arm("job.panic:1").is_err(), "missing seed");
    assert!(!chaos::armed(), "a rejected spec must not arm anything");
}
