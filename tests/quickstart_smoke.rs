//! Smoke test mirroring the facade doctest in `src/lib.rs`.
//!
//! Doctests are skipped by some CI configurations (and by anything invoking
//! the test binaries directly), so the README/facade quickstart path gets a
//! regular integration test too: if this breaks, the very first thing a new
//! user runs is broken.

use dkip::model::config::{DkipConfig, MemoryHierarchyConfig};
use dkip::sim::run_dkip;
use dkip::trace::spec::Benchmark;

#[test]
fn quickstart_swim_20k_has_positive_ipc() {
    let stats = run_dkip(
        &DkipConfig::paper_default(),
        &MemoryHierarchyConfig::mem_400(),
        Benchmark::Swim,
        20_000,
        1,
    );
    assert!(
        stats.ipc() > 0.0,
        "quickstart run produced non-positive IPC: {}",
        stats.ipc()
    );
    assert!(
        stats.committed >= 20_000,
        "quickstart run committed only {} of 20000 instructions",
        stats.committed
    );
}
