//! Differential fuzzing: random RV64IM programs × three core families ×
//! emulator oracle.
//!
//! Each case draws a [`GenConfig`] shape, generates a terminating RV64IM
//! program, and asserts — via `dkip::sim::fuzz::check_config` — that the
//! functional emulator and all three core families (baseline, KILO, D-KIP,
//! each consuming the program through `RiscvStream`) commit the same
//! architectural state: final registers, final memory and dynamic
//! instruction count; and that the perfect-L2 D-KIP stays inside its
//! baseline envelope.
//!
//! The vendored proptest shim has no shrinking, so on failure this harness
//! minimises itself: `minimize_config` descends the shape knobs at the
//! fixed seed, the minimal failing program is written to
//! `tests/corpus/min_<seed>.asm` (replayed by `tests/corpus_replay.rs` as a
//! deterministic regression from then on), and the panic message names the
//! file.
//!
//! Case count: 40 by default (tier-1 speed), overridden by the
//! `DKIP_FUZZ_CASES` environment variable — `make fuzz-smoke` runs 200,
//! `make fuzz` runs the 1000-program campaign.

use std::path::PathBuf;

use dkip::riscv::GenConfig;
use dkip::sim::fuzz::{check_config, minimize_config, FuzzOptions};
use proptest::prelude::*;

fn fuzz_cases() -> u32 {
    std::env::var("DKIP_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Draws a program shape. The body-size knobs are sized *dependently* on
/// the block count (`prop_flat_map`): many-block programs get shorter
/// blocks so every case stays fast, few-block programs get longer ones so
/// straight-line depth is still exercised.
fn config_strategy() -> impl Strategy<Value = GenConfig> {
    (0u64..u64::MAX, 0u32..14).prop_flat_map(|(seed, blocks)| {
        let max_len = 4 + 96 / (blocks + 1);
        (Just(seed), Just(blocks), 0u32..max_len, 0u32..33, 0u32..4).prop_map(
            |(seed, blocks, block_len, max_trip, leaves)| GenConfig {
                seed,
                blocks,
                block_len,
                max_trip,
                leaves,
            },
        )
    })
}

/// Runs one differential check; on mismatch, minimises and records the
/// failing program before panicking.
fn check(cfg: GenConfig) {
    let opts = FuzzOptions::default();
    let Err(first) = check_config(&cfg, &opts) else {
        return;
    };
    let min = minimize_config(cfg, |c| check_config(c, &opts).is_err());
    let mismatch = check_config(&min, &opts).expect_err("minimizer preserves failure");
    let generated = min.generate();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    std::fs::create_dir_all(&dir).expect("create tests/corpus");
    let path = dir.join(format!("min_{:#018x}.asm", min.seed));
    let body = format!(
        "# differential mismatch: {mismatch}\n\
         # minimized from {cfg:?}\n\
         # first observed as: {first}\n\
         {}",
        generated.source
    );
    std::fs::write(&path, body).expect("write corpus reproduction");
    panic!(
        "differential mismatch, minimized to {}: {mismatch}",
        path.display()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(fuzz_cases()))]

    #[test]
    fn random_programs_agree_across_emulator_and_all_three_cores(
        cfg in config_strategy()
    ) {
        check(cfg);
    }
}

/// A zero-length program — no blocks, no loops, just the halting `ecall` —
/// must drain cleanly through all three cores. Regression for the PR 5
/// event-driven clock: an exhausted `MicroOp` stream polled across skipped
/// cycles must keep returning `None`.
#[test]
fn zero_length_program_drains_all_three_cores() {
    let cfg = GenConfig {
        seed: 0,
        blocks: 0,
        block_len: 0,
        max_trip: 0,
        leaves: 0,
    };
    let agreement =
        check_config(&cfg, &FuzzOptions::default()).expect("bare ecall must agree everywhere");
    // The prologue (scratch bases, pool seeds) still retires before the
    // ecall, but no block bodies, loops or calls do.
    assert!(agreement.dynamic_len < 64, "{}", agreement.dynamic_len);
}

/// A pinned set of shapes checked on every `cargo test`, independent of
/// the proptest shim's name-seeded stream: one per structural feature
/// (straight-line, loops, leaf calls, dense memory traffic).
#[test]
fn pinned_shapes_agree_across_emulator_and_all_three_cores() {
    let shapes = [
        GenConfig::new(0xd1f5),
        GenConfig {
            seed: 0x10af,
            blocks: 3,
            block_len: 40,
            max_trip: 0,
            leaves: 0,
        },
        GenConfig {
            seed: 0x200b,
            blocks: 12,
            block_len: 6,
            max_trip: 32,
            leaves: 0,
        },
        GenConfig {
            seed: 0x3001,
            blocks: 6,
            block_len: 10,
            max_trip: 8,
            leaves: 3,
        },
    ];
    for cfg in shapes {
        if let Err(mismatch) = check_config(&cfg, &FuzzOptions::default()) {
            panic!("{cfg:?}: {mismatch}");
        }
    }
}
