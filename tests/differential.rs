//! Differential sanity check: with a perfect L2 no load ever reaches main
//! memory, so the D-KIP's Analyze stage never flags a long-latency
//! destination, nothing is extracted to the LLIB, and the machine must
//! behave like its Cache Processor alone — which is configured identically
//! to the `R10-64` baseline.

use dkip::model::config::{BaselineConfig, DkipConfig, MemoryHierarchyConfig};
use dkip::sim::{run_baseline, run_dkip};
use dkip::trace::Benchmark;

const BUDGET: u64 = 10_000;
const SEED: u64 = 1;

/// Benchmarks spanning both suites and both ends of the locality spectrum.
const BENCHES: [Benchmark; 5] = [
    Benchmark::Gcc,
    Benchmark::Mcf,
    Benchmark::Swim,
    Benchmark::Mesa,
    Benchmark::Applu,
];

fn assert_dkip_degenerates_to_baseline(mem: &MemoryHierarchyConfig) {
    for bench in BENCHES {
        let dkip = run_dkip(&DkipConfig::paper_default(), mem, bench, BUDGET, SEED);
        let base = run_baseline(&BaselineConfig::r10_64(), mem, bench, BUDGET, SEED);

        assert_eq!(
            dkip.low_locality_instrs,
            0,
            "{}/{}: no instruction may be extracted to the LLIB under a perfect L2",
            mem.name,
            bench.name()
        );
        assert_eq!(
            dkip.llib_int_peak_instrs,
            0,
            "{}: integer LLIB must stay empty",
            bench.name()
        );
        assert_eq!(
            dkip.llib_fp_peak_instrs,
            0,
            "{}: FP LLIB must stay empty",
            bench.name()
        );
        assert_eq!(
            dkip.llrf_int_peak_regs,
            0,
            "{}: integer LLRF must stay empty",
            bench.name()
        );
        assert_eq!(
            dkip.llrf_fp_peak_regs,
            0,
            "{}: FP LLRF must stay empty",
            bench.name()
        );
        assert_eq!(
            dkip.mem_accesses,
            0,
            "{}: a perfect L2 never reaches memory",
            bench.name()
        );

        let ratio = dkip.ipc() / base.ipc();
        assert!(
            (0.9..=1.1).contains(&ratio),
            "{}/{}: D-KIP must match the R10-64 baseline within 10% under a perfect L2 \
             (dkip={:.3}, baseline={:.3}, ratio={ratio:.3})",
            mem.name,
            bench.name(),
            dkip.ipc(),
            base.ipc()
        );
    }
}

#[test]
fn dkip_matches_baseline_with_a_perfect_l2() {
    assert_dkip_degenerates_to_baseline(&MemoryHierarchyConfig::l2_11());
}

#[test]
fn dkip_matches_baseline_with_a_perfect_l1() {
    assert_dkip_degenerates_to_baseline(&MemoryHierarchyConfig::l1_2());
}

/// Control experiment: with the real 400-cycle memory the same benchmarks
/// *do* spill into the LLIB, so the perfect-L2 assertions above are not
/// vacuously true.
#[test]
fn real_memory_does_populate_the_llib() {
    let mem = MemoryHierarchyConfig::mem_400();
    let spilled = BENCHES
        .iter()
        .filter(|&&bench| {
            run_dkip(&DkipConfig::paper_default(), &mem, bench, BUDGET, SEED).low_locality_instrs
                > 0
        })
        .count();
    assert!(
        spilled >= 3,
        "expected most benchmarks to spill, got {spilled}/5"
    );
}
