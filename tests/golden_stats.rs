//! Golden-stats regression tests: pin the simulated statistics of every
//! processor family against checked-in snapshots under `tests/golden/`.
//!
//! Each test regenerates a fixed sweep with the [`SweepRunner`], checks the
//! parallel run is byte-identical to the serial reference, and then
//! compares the stable serialisation against the snapshot. A behavioural
//! change anywhere in the CP/LLIB/MP pipeline (or the baselines, the memory
//! model or the trace generator) shows up as a line-level diff.
//!
//! To accept an intended change, regenerate the snapshots with
//! `DKIP_BLESS=1 cargo test --test golden_stats` (`make bless`) and review
//! the `tests/golden/` diff.

use std::path::PathBuf;

use dkip::sim::golden;
use dkip::sim::runner::results_to_kv;
use dkip::sim::suites;
use dkip::sim::{Job, SweepRunner};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Runs the jobs serially and in parallel, asserts thread-count invariance,
/// and checks the serialisation against `tests/golden/<name>`.
///
/// Three runners are compared: the serial reference, a fixed 4-thread pool,
/// and the environment-configured pool — so `DKIP_THREADS=N cargo test`
/// (as CI does with 1 and 8) exercises an N-thread sweep too.
fn check_family(name: &str, jobs: &[Job]) {
    let serial = results_to_kv(&SweepRunner::serial().run(jobs));
    let parallel = results_to_kv(&SweepRunner::new(4).run(jobs));
    assert_eq!(serial, parallel, "sweep must be thread-count invariant");
    let from_env = SweepRunner::from_env();
    if ![1, 4].contains(&from_env.threads()) {
        // Thread counts 1 and 4 are already covered above; only pay for a
        // third sweep when the environment asks for something new.
        let env_run = results_to_kv(&from_env.run(jobs));
        assert_eq!(
            serial,
            env_run,
            "sweep must be invariant at DKIP_THREADS={}",
            from_env.threads()
        );
    }
    if let Err(err) = golden::check(&golden_path(name), &serial) {
        panic!("{err}");
    }
}

#[test]
fn golden_baseline_family() {
    check_family("baseline.golden", &suites::golden_baseline_jobs());
}

#[test]
fn golden_kilo_family() {
    check_family("kilo.golden", &suites::golden_kilo_jobs());
}

#[test]
fn golden_dkip_family() {
    check_family("dkip.golden", &suites::golden_dkip_jobs());
}

#[test]
fn golden_riscv_family() {
    // The exact matrix the `fig_riscv_ipc` binary simulates: every shipped
    // RV64IM kernel, run to completion on all three core families over the
    // paper-default memory hierarchy. Execution-driven workloads are
    // seed-independent, so these snapshots pin the frontend (assembler,
    // emulator, cracking) as well as the core models.
    check_family("riscv.golden", &suites::golden_riscv_jobs());
}

/// The golden files themselves must carry real data: every job section has
/// a non-zero committed count, so a perturbed IPC can't hide behind zeros.
#[test]
fn golden_snapshots_contain_live_counters() {
    if golden::bless_requested() {
        // The family tests are rewriting the snapshots concurrently; this
        // check would validate whichever generation it happened to read.
        return;
    }
    for name in [
        "baseline.golden",
        "kilo.golden",
        "dkip.golden",
        "riscv.golden",
    ] {
        let path = golden_path(name);
        let Ok(content) = std::fs::read_to_string(&path) else {
            // Snapshot not created yet (first run before blessing); the
            // family tests already report that case.
            continue;
        };
        assert!(content.contains("committed="), "{name} must hold counters");
        assert!(
            !content.contains("committed=0\n"),
            "{name} must not contain empty runs"
        );
        assert!(content.contains("ipc="), "{name} must pin IPC values");
    }
}
