//! Golden-stats regression tests: pin the simulated statistics of every
//! processor family against checked-in snapshots under `tests/golden/`.
//!
//! Each test regenerates a fixed sweep with the [`SweepRunner`], checks the
//! parallel run is byte-identical to the serial reference, and then
//! compares the stable serialisation against the snapshot. A behavioural
//! change anywhere in the CP/LLIB/MP pipeline (or the baselines, the memory
//! model or the trace generator) shows up as a line-level diff.
//!
//! To accept an intended change, regenerate the snapshots with
//! `DKIP_BLESS=1 cargo test --test golden_stats` (`make bless`) and review
//! the `tests/golden/` diff.

use std::path::PathBuf;

use dkip::model::config::{BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig};
use dkip::sim::experiments::{riscv_kernel_runs, riscv_machines, RISCV_BUDGET};
use dkip::sim::golden;
use dkip::sim::runner::results_to_kv;
use dkip::sim::{Job, Machine, SweepRunner};
use dkip::trace::Benchmark;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Runs the jobs serially and in parallel, asserts thread-count invariance,
/// and checks the serialisation against `tests/golden/<name>`.
///
/// Three runners are compared: the serial reference, a fixed 4-thread pool,
/// and the environment-configured pool — so `DKIP_THREADS=N cargo test`
/// (as CI does with 1 and 8) exercises an N-thread sweep too.
fn check_family(name: &str, jobs: &[Job]) {
    let serial = results_to_kv(&SweepRunner::serial().run(jobs));
    let parallel = results_to_kv(&SweepRunner::new(4).run(jobs));
    assert_eq!(serial, parallel, "sweep must be thread-count invariant");
    let from_env = SweepRunner::from_env();
    if ![1, 4].contains(&from_env.threads()) {
        // Thread counts 1 and 4 are already covered above; only pay for a
        // third sweep when the environment asks for something new.
        let env_run = results_to_kv(&from_env.run(jobs));
        assert_eq!(
            serial,
            env_run,
            "sweep must be invariant at DKIP_THREADS={}",
            from_env.threads()
        );
    }
    if let Err(err) = golden::check(&golden_path(name), &serial) {
        panic!("{err}");
    }
}

#[test]
fn golden_baseline_family() {
    let mem = MemoryHierarchyConfig::mem_400();
    let mut jobs = vec![
        Job::new("r10-64/gcc", Machine::Baseline(BaselineConfig::r10_64()), mem.clone(), Benchmark::Gcc, 4_000),
        Job::new("r10-64/mcf", Machine::Baseline(BaselineConfig::r10_64()), mem.clone(), Benchmark::Mcf, 4_000),
        Job::new(
            "r10-256/swim",
            Machine::Baseline(BaselineConfig::r10_256()),
            mem.clone(),
            Benchmark::Swim,
            4_000,
        ),
        Job::new(
            "r10-64/l1-2/crafty",
            Machine::Baseline(BaselineConfig::r10_64()),
            MemoryHierarchyConfig::l1_2(),
            Benchmark::Crafty,
            4_000,
        ),
    ];
    // The unbounded characterisation core exercises the issue-latency
    // histogram serialisation.
    jobs.push(Job::new(
        "unbounded/mesa",
        Machine::Baseline(BaselineConfig::unbounded()),
        mem,
        Benchmark::Mesa,
        2_000,
    ));
    check_family("baseline.golden", &jobs);
}

#[test]
fn golden_kilo_family() {
    let mem = MemoryHierarchyConfig::mem_400();
    let jobs = vec![
        Job::new("kilo-1024/gcc", Machine::Kilo(KiloConfig::kilo_1024()), mem.clone(), Benchmark::Gcc, 4_000),
        Job::new("kilo-1024/mcf", Machine::Kilo(KiloConfig::kilo_1024()), mem.clone(), Benchmark::Mcf, 4_000),
        Job::new("kilo-1024/swim", Machine::Kilo(KiloConfig::kilo_1024()), mem, Benchmark::Swim, 4_000),
    ];
    check_family("kilo.golden", &jobs);
}

#[test]
fn golden_dkip_family() {
    let mem = MemoryHierarchyConfig::mem_400();
    let small_l2 = MemoryHierarchyConfig::mem_400().with_l2_kb(64);
    let jobs = vec![
        Job::new("dkip-2048/gcc", Machine::Dkip(DkipConfig::paper_default()), mem.clone(), Benchmark::Gcc, 4_000),
        Job::new("dkip-2048/mcf", Machine::Dkip(DkipConfig::paper_default()), mem.clone(), Benchmark::Mcf, 4_000),
        Job::new("dkip-2048/swim", Machine::Dkip(DkipConfig::paper_default()), mem.clone(), Benchmark::Swim, 4_000),
        Job::new(
            "dkip-512/applu",
            Machine::Dkip(DkipConfig::paper_default().with_llib_capacity(512)),
            mem,
            Benchmark::Applu,
            4_000,
        ),
        Job::new(
            "dkip-2048/64kb-l2/equake",
            Machine::Dkip(DkipConfig::paper_default()),
            small_l2,
            Benchmark::Equake,
            4_000,
        ),
    ];
    check_family("dkip.golden", &jobs);
}

#[test]
fn golden_riscv_family() {
    // The exact matrix the `fig_riscv_ipc` binary simulates: every shipped
    // RV64IM kernel, run to completion on all three core families over the
    // paper-default memory hierarchy. Execution-driven workloads are
    // seed-independent, so these snapshots pin the frontend (assembler,
    // emulator, cracking) as well as the core models.
    let mem = MemoryHierarchyConfig::paper_default();
    let mut jobs = Vec::new();
    for (tag, machine) in riscv_machines() {
        for run in riscv_kernel_runs() {
            jobs.push(Job::new(
                format!("{}/{}", tag.to_lowercase(), run.name()),
                machine.clone(),
                mem.clone(),
                run,
                RISCV_BUDGET,
            ));
        }
    }
    check_family("riscv.golden", &jobs);
}

/// The golden files themselves must carry real data: every job section has
/// a non-zero committed count, so a perturbed IPC can't hide behind zeros.
#[test]
fn golden_snapshots_contain_live_counters() {
    if golden::bless_requested() {
        // The family tests are rewriting the snapshots concurrently; this
        // check would validate whichever generation it happened to read.
        return;
    }
    for name in ["baseline.golden", "kilo.golden", "dkip.golden", "riscv.golden"] {
        let path = golden_path(name);
        let Ok(content) = std::fs::read_to_string(&path) else {
            // Snapshot not created yet (first run before blessing); the
            // family tests already report that case.
            continue;
        };
        assert!(content.contains("committed="), "{name} must hold counters");
        assert!(
            !content.contains("committed=0\n"),
            "{name} must not contain empty runs"
        );
        assert!(content.contains("ipc="), "{name} must pin IPC values");
    }
}
