//! Sampled-vs-exact differential accuracy suite.
//!
//! Exact simulation is the golden reference; sampled mode
//! (`dkip::sim::run_sampled`) is an *estimator*. This suite pins the
//! estimator's quality on all four golden-suite machine matrices: for each
//! suite the whole-run IPC of every job is computed exactly and sampled,
//! and the relative error must stay inside
//!
//! * a **3% band on the suite-mean IPC** (the figure-level quantity the
//!   paper's plots are built from), and
//! * a **10% band on every individual job** (no single workload may be
//!   grossly misestimated even when errors cancel across the suite).
//!
//! The runs are longer than the 4 000-instruction golden budgets: a
//! sampling period is thousands of instructions, so the synthetic suites
//! run their golden machine/memory/workload matrix at a 100 000-instruction
//! budget and the RISC-V matrix runs scaled-up kernel sizes (~70k–200k
//! dynamic instructions) to completion. Sampling rates are per-suite: the
//! D-KIP's latency tolerance needs a denser rate (smaller gaps) than the
//! other families because draining between periods forfeits more of its
//! overlap.
//!
//! Everything here is deterministic — both modes are single-seeded and
//! thread-count invariant — so the bands are exact regression pins, not
//! statistical hopes.

use dkip::model::SampleConfig;
use dkip::riscv::{Kernel, KernelRun};
use dkip::sim::runner::Job;
use dkip::sim::{suites, Machine, SweepRunner};

/// Maximum relative error of the suite-mean IPC.
const SUITE_MEAN_BAND: f64 = 0.03;
/// Maximum relative error of any single job's IPC.
const PER_JOB_BAND: f64 = 0.10;

/// Budget for the synthetic (endless-workload) suites. Long enough for
/// several sampling periods per job, short enough for a test.
const SYNTHETIC_BUDGET: u64 = 100_000;

/// Runs `jobs` exactly and under `rate`, then asserts both error bands.
fn check_suite(name: &str, jobs: &[Job], rate: &str) {
    let sample = SampleConfig::parse(rate).expect("valid sampling rate");
    let runner = SweepRunner::from_env();
    let exact = runner.run(jobs);
    let sampled_jobs: Vec<Job> = jobs
        .iter()
        .map(|job| job.clone().with_sample(sample))
        .collect();
    let sampled = runner.run(&sampled_jobs);

    let mut mean_exact = 0.0;
    let mut mean_sampled = 0.0;
    for (e, s) in exact.iter().zip(&sampled) {
        let exact_ipc = e.stats.ipc();
        let sampled_ipc = s.stats.ipc();
        assert!(exact_ipc > 0.0, "{}: exact IPC must be positive", e.label);
        let err = (sampled_ipc - exact_ipc).abs() / exact_ipc;
        assert!(
            err <= PER_JOB_BAND,
            "{name}/{}: sampled IPC {sampled_ipc:.4} vs exact {exact_ipc:.4} \
             ({:.2}% error exceeds the {:.0}% per-job band at rate {rate})",
            e.label,
            err * 100.0,
            PER_JOB_BAND * 100.0,
        );
        mean_exact += exact_ipc;
        mean_sampled += sampled_ipc;
    }
    mean_exact /= exact.len() as f64;
    mean_sampled /= sampled.len() as f64;
    let mean_err = (mean_sampled - mean_exact).abs() / mean_exact;
    assert!(
        mean_err <= SUITE_MEAN_BAND,
        "{name}: sampled suite-mean IPC {mean_sampled:.4} vs exact {mean_exact:.4} \
         ({:.2}% error exceeds the {:.0}% suite-mean band at rate {rate})",
        mean_err * 100.0,
        SUITE_MEAN_BAND * 100.0,
    );
}

/// The golden suite's machine/memory/workload matrix re-budgeted for
/// sampling (the 4 000-instruction golden budget is shorter than a single
/// sampling period).
fn rebudget(jobs: Vec<Job>) -> Vec<Job> {
    jobs.into_iter()
        .map(|mut job| {
            job.budget = SYNTHETIC_BUDGET;
            job
        })
        .collect()
}

/// The golden RISC-V matrix (every kernel on every family) with scaled-up
/// kernel sizes, so each job's full dynamic execution spans many sampling
/// periods. Runs to completion like the golden suite.
fn scaled_riscv_jobs() -> Vec<Job> {
    let runs = [
        KernelRun::new(Kernel::Matmul, 16),
        KernelRun::new(Kernel::ListWalk, 4096),
        KernelRun::new(Kernel::Sieve, 8000),
        KernelRun::new(Kernel::FibRec, 19),
        KernelRun::new(Kernel::Memcpy, 8192),
        KernelRun::new(Kernel::BoxBlur, 28),
    ];
    let golden = suites::golden_riscv_jobs();
    let mut machines: Vec<Machine> = Vec::new();
    for job in &golden {
        if !machines.contains(&job.machine) {
            machines.push(job.machine.clone());
        }
    }
    assert_eq!(machines.len(), 3, "one machine per core family");
    let mem = golden[0].mem.clone();
    let mut jobs = Vec::new();
    for machine in &machines {
        for run in runs {
            jobs.push(Job::new(
                format!("{}/{}", machine.family(), run.name()),
                machine.clone(),
                mem.clone(),
                run,
                1_000_000,
            ));
        }
    }
    jobs
}

#[test]
fn baseline_suite_sampled_ipc_matches_exact() {
    check_suite(
        "baseline",
        &rebudget(suites::golden_baseline_jobs()),
        "20000:4000:4000",
    );
}

#[test]
fn kilo_suite_sampled_ipc_matches_exact() {
    check_suite(
        "kilo",
        &rebudget(suites::golden_kilo_jobs()),
        "20000:4000:4000",
    );
}

#[test]
fn dkip_suite_sampled_ipc_matches_exact() {
    check_suite(
        "dkip",
        &rebudget(suites::golden_dkip_jobs()),
        "12000:3000:3000",
    );
}

#[test]
fn riscv_suite_sampled_ipc_matches_exact() {
    check_suite("riscv", &scaled_riscv_jobs(), "20000:4000:4000");
}
