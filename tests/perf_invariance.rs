//! Perf-invariance contract: the hot-path optimizations (arena/scoreboard
//! issue queues, pooled consumer tables, fast deterministic hashing, the
//! slot-indexed LSQ) must be *observationally pure*. This test regenerates
//! every pinned golden sweep — the three Spec-family snapshots and the
//! 18-job RISC-V matrix — at exactly 1 and 8 runner threads and requires
//! `SimStats::to_kv()` to be bit-identical to the checked-in snapshots.
//!
//! It deliberately duplicates part of `golden_stats.rs` (which compares the
//! serial run against `DKIP_THREADS`-selected pools): here the two thread
//! counts are hard-pinned so a thread-sensitivity bug cannot hide behind a
//! CI environment that happens to set both jobs to the same pool size.

use std::path::PathBuf;

use dkip::sim::golden;
use dkip::sim::runner::results_to_kv;
use dkip::sim::suites;
use dkip::sim::SweepRunner;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Runs one pinned suite at a fixed thread count and diffs it against its
/// snapshot.
fn check_suite_at(threads: usize, name: &str) {
    let jobs = suites::golden_suites()
        .into_iter()
        .find(|(suite_name, _)| *suite_name == name)
        .map(|(_, jobs)| jobs)
        .expect("known suite name");
    let serialised = results_to_kv(&SweepRunner::new(threads).run(&jobs));
    if let Err(err) = golden::check(&golden_path(name), &serialised) {
        panic!("suite {name} at {threads} threads: {err}");
    }
}

#[test]
fn spec_baseline_snapshot_is_bit_identical_at_1_and_8_threads() {
    check_suite_at(1, "baseline.golden");
    check_suite_at(8, "baseline.golden");
}

#[test]
fn spec_kilo_snapshot_is_bit_identical_at_1_and_8_threads() {
    check_suite_at(1, "kilo.golden");
    check_suite_at(8, "kilo.golden");
}

#[test]
fn spec_dkip_snapshot_is_bit_identical_at_1_and_8_threads() {
    check_suite_at(1, "dkip.golden");
    check_suite_at(8, "dkip.golden");
}

#[test]
fn riscv_18_job_matrix_is_bit_identical_at_1_and_8_threads() {
    let jobs = suites::golden_riscv_jobs();
    assert_eq!(jobs.len(), 18, "the full 6-kernel x 3-family matrix");
    check_suite_at(1, "riscv.golden");
    check_suite_at(8, "riscv.golden");
}

/// Repeated runs of one job within a process must also agree with each
/// other — catches accidental global state (e.g. pooled buffers leaking
/// state between machines).
#[test]
fn repeated_runs_are_self_consistent() {
    for (_, jobs) in suites::golden_suites() {
        let first = results_to_kv(&SweepRunner::serial().run(&jobs[..1]));
        let second = results_to_kv(&SweepRunner::serial().run(&jobs[..1]));
        assert_eq!(first, second);
    }
}
