//! Event-driven-clock equivalence contract: skipping quiesced cycles must be
//! *observationally pure*. Every pinned golden sweep — the three Spec-family
//! suites and the 18-job RISC-V matrix — is run twice, once with the default
//! event-driven clock and once single-stepped (`DKIP_NO_SKIP=1`), at exactly
//! 1 and 8 runner threads, and the full `SimStats::to_kv()` serialisations
//! must be bit-identical. The default-clock run must also have skipped at
//! least one cycle somewhere, so this test cannot silently pass because the
//! skip path stopped engaging.
//!
//! `golden_stats.rs` separately pins the default-clock output against the
//! snapshots in `tests/golden/`, so together the two tests prove
//! skip-on == skip-off == golden.

use std::sync::Mutex;

use dkip::sim::runner::{results_to_kv, JobResult};
use dkip::sim::suites;
use dkip::sim::SweepRunner;
use dkip_model::NO_SKIP_ENV;

/// Serialises env-var flips: the cores sample `DKIP_NO_SKIP` at construction
/// time, so no sweep may be in flight while another test mutates it.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn run_suite(name: &str, threads: usize, single_step: bool) -> Vec<JobResult> {
    let jobs = suites::golden_suites()
        .into_iter()
        .find(|(suite_name, _)| *suite_name == name)
        .map(|(_, jobs)| jobs)
        .expect("known suite name");
    if single_step {
        std::env::set_var(NO_SKIP_ENV, "1");
    } else {
        std::env::remove_var(NO_SKIP_ENV);
    }
    let results = SweepRunner::new(threads).run(&jobs);
    std::env::remove_var(NO_SKIP_ENV);
    results
}

fn check_suite(name: &str) {
    let _guard = ENV_LOCK.lock().expect("env lock poisoned");
    for threads in [1, 8] {
        let skipping = run_suite(name, threads, false);
        let stepped = run_suite(name, threads, true);
        assert_eq!(
            results_to_kv(&skipping),
            results_to_kv(&stepped),
            "suite {name} at {threads} threads: event-driven clock must be bit-identical \
             to single-stepping"
        );
        let skipped_total: u64 = skipping.iter().map(|r| r.stats.cycles_skipped).sum();
        assert!(
            skipped_total > 0,
            "suite {name} at {threads} threads: the event-driven clock never engaged"
        );
        let stepped_total: u64 = stepped.iter().map(|r| r.stats.cycles_skipped).sum();
        assert_eq!(
            stepped_total, 0,
            "suite {name} at {threads} threads: DKIP_NO_SKIP=1 must force single-stepping"
        );
        for (a, b) in skipping.iter().zip(&stepped) {
            assert_eq!(
                a.stats.ticks_executed + a.stats.cycles_skipped,
                a.stats.cycles,
                "{}: ticked + skipped must cover every simulated cycle",
                a.label
            );
            assert_eq!(
                b.stats.ticks_executed, b.stats.cycles,
                "{}: single-stepping ticks every cycle",
                b.label
            );
        }
    }
}

#[test]
fn spec_baseline_suite_is_bit_identical_across_clock_modes() {
    check_suite("baseline.golden");
}

#[test]
fn spec_kilo_suite_is_bit_identical_across_clock_modes() {
    check_suite("kilo.golden");
}

#[test]
fn spec_dkip_suite_is_bit_identical_across_clock_modes() {
    check_suite("dkip.golden");
}

#[test]
fn riscv_18_job_matrix_is_bit_identical_across_clock_modes() {
    check_suite("riscv.golden");
}
