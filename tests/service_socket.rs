//! Live-socket tests for the sweep server: the error paths a unit test of
//! `SweepService::answer` can't reach. A real `run_server` instance on an
//! ephemeral TCP port takes malformed requests, an oversized line, a
//! mid-request disconnect, an injected handler panic and an injected
//! stall — and must answer the next `ping` after every one of them.
//!
//! Tests that arm chaos faults serialise on a lock (the registry is
//! process-wide); each test runs its own server so shutdown semantics
//! stay independent.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use dkip::sim::chaos;
use dkip::sim::service::{run_server, ServeOptions, SweepService};
use dkip::sim::SweepRunner;

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// One running server on an ephemeral local port, shut down on drop.
struct TestServer {
    addr: SocketAddr,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(opts: ServeOptions) -> TestServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
        let addr = listener.local_addr().expect("ephemeral port has an addr");
        let service = SweepService::new(SweepRunner::serial());
        let thread = std::thread::spawn(move || {
            run_server(&listener, service, &opts).expect("server runs until shutdown");
        });
        TestServer {
            addr,
            thread: Some(thread),
        }
    }

    fn connect(&self) -> Client {
        let stream = TcpStream::connect(self.addr).expect("server is accepting");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("socket supports read timeouts");
        Client {
            reader: BufReader::new(stream),
        }
    }

    /// Sends `shutdown` and joins the accept loop.
    fn shutdown(mut self) {
        let mut client = self.connect();
        assert_eq!(client.request("shutdown").0, "ok draining");
        self.thread
            .take()
            .expect("not yet shut down")
            .join()
            .expect("the server thread exits cleanly after shutdown");
    }
}

/// One client connection speaking the line protocol.
struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn send(&mut self, raw: &[u8]) {
        let stream = self.reader.get_mut();
        stream.write_all(raw).expect("send");
        stream.flush().expect("flush");
    }

    /// Reads one `status / body / .` response.
    fn read_response(&mut self) -> (String, String) {
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("status line");
        let status = status.trim_end().to_owned();
        assert!(!status.is_empty(), "connection closed before a status line");
        let mut body = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("body line");
            assert!(n > 0, "connection closed before the '.' terminator");
            if line.trim_end() == "." {
                return (status, body);
            }
            body.push_str(&line);
        }
    }

    fn request(&mut self, line: &str) -> (String, String) {
        self.send(format!("{line}\n").as_bytes());
        self.read_response()
    }
}

#[test]
fn malformed_oversized_and_disconnecting_clients_leave_the_server_up() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let server = TestServer::start(ServeOptions {
        max_line: 64,
        drain: Duration::from_millis(300),
        ..ServeOptions::default()
    });

    // Malformed request: an err response, same connection keeps working.
    let mut client = server.connect();
    let (status, body) = client.request("frobnicate the sweep");
    assert!(status.starts_with("err unknown request"), "got: {status}");
    assert!(body.is_empty());
    assert_eq!(client.request("ping").0, "ok pong");

    // Oversized line: capped, reported, and the stream resyncs.
    let oversized = format!("{}\n", "x".repeat(500));
    client.send(oversized.as_bytes());
    let (status, _) = client.read_response();
    assert_eq!(status, "err request too long (max 64 bytes)");
    assert_eq!(client.request("ping").0, "ok pong");

    // Mid-request disconnect: a partial line with no newline, then gone.
    let mut rude = server.connect();
    rude.send(b"suite kil");
    drop(rude);

    // The server still answers a fresh connection.
    let mut after = server.connect();
    assert_eq!(after.request("ping").0, "ok pong");
    server.shutdown();
}

#[test]
fn handler_panics_are_isolated_and_counted() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let server = TestServer::start(ServeOptions {
        drain: Duration::from_millis(300),
        ..ServeOptions::default()
    });
    let mut client = server.connect();
    chaos::arm("service.answer:first1:0").expect("valid spec");
    let (status, _) = client.request("ping");
    chaos::disarm();
    assert!(
        status.starts_with("err internal: request panicked"),
        "got: {status}"
    );
    assert!(status.contains(chaos::CHAOS_TAG));
    // Same connection, next request: alive, and the counters saw it all.
    assert_eq!(client.request("ping").0, "ok pong");
    let (status, _) = client.request("status");
    assert!(status.starts_with("ok uptime_ms="), "got: {status}");
    assert!(status.contains("panics=1"), "got: {status}");
    assert!(status.contains("errors=1"), "got: {status}");
    server.shutdown();
}

#[test]
fn slow_requests_time_out_with_an_err_response() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let server = TestServer::start(ServeOptions {
        deadline: Some(Duration::from_millis(50)),
        drain: Duration::from_millis(300),
        ..ServeOptions::default()
    });
    let mut client = server.connect();
    // The injected stall sleeps 250 ms, far past the 50 ms deadline.
    chaos::arm("service.stall:first1:0").expect("valid spec");
    let (status, _) = client.request("ping");
    chaos::disarm();
    assert!(status.starts_with("err timeout"), "got: {status}");
    assert_eq!(client.request("ping").0, "ok pong");
    server.shutdown();
}

#[test]
fn shutdown_drains_and_the_accept_loop_exits() {
    let _guard = CHAOS_LOCK.lock().unwrap();
    let server = TestServer::start(ServeOptions {
        drain: Duration::from_millis(500),
        ..ServeOptions::default()
    });
    // An idle keep-alive connection must not block the drain forever.
    let _idle = server.connect();
    let addr = server.addr;
    server.shutdown();
    // The listener is gone: a fresh connect must fail (the OS may accept
    // into a dead backlog on some platforms, so accept either outcome of
    // connect, but a request must never be answered).
    if let Ok(stream) = TcpStream::connect(addr) {
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut reader = BufReader::new(stream);
        let _ = reader.get_mut().write_all(b"ping\n");
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).is_err() || line.is_empty(),
            "a drained server must not answer: {line:?}"
        );
    }
}
