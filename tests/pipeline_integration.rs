//! Integration tests spanning the whole workspace: workload generation →
//! memory hierarchy → branch prediction → the three core models → the
//! experiment harness.

use dkip::model::config::{
    BaselineConfig, DkipConfig, KiloConfig, MemoryHierarchyConfig, SchedPolicy,
};
use dkip::sim::{run_baseline, run_dkip, run_kilo, suite_mean_ipc};
use dkip::trace::{Benchmark, Suite, TraceGenerator};

const BUDGET: u64 = 8_000;

#[test]
fn all_three_processor_families_run_every_representative_benchmark() {
    let mem = MemoryHierarchyConfig::mem_400();
    for bench in Benchmark::representative() {
        let base = run_baseline(&BaselineConfig::r10_64(), &mem, bench, BUDGET, 1);
        let kilo = run_kilo(&KiloConfig::kilo_1024(), &mem, bench, BUDGET, 1);
        let dkip = run_dkip(&DkipConfig::paper_default(), &mem, bench, BUDGET, 1);
        for (name, stats) in [("r10-64", &base), ("kilo", &kilo), ("dkip", &dkip)] {
            assert!(
                stats.committed >= BUDGET,
                "{name} on {} committed only {}",
                bench.name(),
                stats.committed
            );
            assert!(
                stats.ipc() > 0.0 && stats.ipc() <= 4.0,
                "{name} on {}",
                bench.name()
            );
        }
    }
}

#[test]
fn figure9_ordering_holds_on_memory_bound_fp() {
    // The qualitative Figure 9 result: both kilo-window designs clearly beat
    // the conventional cores on memory-bound floating-point code.
    let mem = MemoryHierarchyConfig::mem_400();
    let bench = Benchmark::Swim;
    let r10_64 = run_baseline(&BaselineConfig::r10_64(), &mem, bench, BUDGET, 1).ipc();
    let r10_256 = run_baseline(&BaselineConfig::r10_256(), &mem, bench, BUDGET, 1).ipc();
    let kilo = run_kilo(&KiloConfig::kilo_1024(), &mem, bench, BUDGET, 1).ipc();
    let dkip = run_dkip(&DkipConfig::paper_default(), &mem, bench, BUDGET, 1).ipc();
    assert!(dkip > r10_64, "dkip={dkip} r10_64={r10_64}");
    assert!(dkip > r10_256 * 0.9, "dkip={dkip} r10_256={r10_256}");
    assert!(kilo > r10_64, "kilo={kilo} r10_64={r10_64}");
}

#[test]
fn window_scaling_recovers_fp_ipc_but_not_int_ipc() {
    // Figures 1 and 2 in miniature.
    let mem = MemoryHierarchyConfig::mem_400();
    let small = BaselineConfig::idealized(48);
    let large = BaselineConfig::idealized(1024);
    let fp_small = run_baseline(&small, &mem, Benchmark::Swim, BUDGET, 1).ipc();
    let fp_large = run_baseline(&large, &mem, Benchmark::Swim, BUDGET, 1).ipc();
    let int_small = run_baseline(&small, &mem, Benchmark::Mcf, BUDGET, 1).ipc();
    let int_large = run_baseline(&large, &mem, Benchmark::Mcf, BUDGET, 1).ipc();
    let fp_gain = fp_large / fp_small;
    let int_gain = int_large / int_small;
    assert!(fp_gain > 1.5, "fp_gain={fp_gain}");
    assert!(fp_gain > int_gain, "fp_gain={fp_gain} int_gain={int_gain}");
}

#[test]
fn perfect_l1_removes_the_benefit_of_the_dkip() {
    // With no memory wall there is (almost) no low-locality code, so the
    // D-KIP and a conventional core of the same CP size perform similarly.
    let mem = MemoryHierarchyConfig::l1_2();
    let dkip = run_dkip(
        &DkipConfig::paper_default(),
        &mem,
        Benchmark::Mesa,
        BUDGET,
        1,
    );
    let r10 = run_baseline(&BaselineConfig::r10_64(), &mem, Benchmark::Mesa, BUDGET, 1);
    assert!(
        dkip.low_locality_instrs == 0,
        "a perfect L1 creates no low-locality slices"
    );
    let ratio = dkip.ipc() / r10.ipc();
    assert!(ratio > 0.7 && ratio < 1.3, "ratio={ratio}");
}

#[test]
fn dkip_llib_occupancy_respects_table2_bounds_across_the_suite() {
    let mem = MemoryHierarchyConfig::mem_400();
    for bench in [Benchmark::Swim, Benchmark::Mcf, Benchmark::Art] {
        let stats = run_dkip(&DkipConfig::paper_default(), &mem, bench, BUDGET, 1);
        assert!(stats.llib_int_peak_instrs <= 2048);
        assert!(stats.llib_fp_peak_instrs <= 2048);
        assert!(stats.llrf_int_peak_regs <= 2048);
        assert!(stats.llrf_fp_peak_regs <= 2048);
        assert!(
            stats.llrf_int_peak_regs <= stats.llib_int_peak_instrs
                || stats.llib_int_peak_instrs == 0,
            "{}: registers cannot exceed instructions",
            bench.name()
        );
    }
}

#[test]
fn scheduler_policy_sweep_is_monotonic_in_the_expected_direction() {
    // Figure 10 in miniature: an out-of-order Cache Processor beats an
    // in-order one on SpecFP.
    let mem = MemoryHierarchyConfig::mem_400();
    let benches: Vec<Benchmark> = Benchmark::representative()
        .into_iter()
        .filter(|b| b.suite() == Suite::Fp)
        .collect();
    let ooo_cfg = DkipConfig::paper_default().with_cp(SchedPolicy::OutOfOrder, 40);
    let ino_cfg = DkipConfig::paper_default().with_cp(SchedPolicy::InOrder, 40);
    let ooo = suite_mean_ipc(&benches, &|b| run_dkip(&ooo_cfg, &mem, b, BUDGET, 1));
    let ino = suite_mean_ipc(&benches, &|b| run_dkip(&ino_cfg, &mem, b, BUDGET, 1));
    assert!(ooo > ino, "ooo={ooo} ino={ino}");
}

#[test]
fn traces_are_reproducible_end_to_end() {
    let mem = MemoryHierarchyConfig::mem_400();
    let a = run_dkip(&DkipConfig::paper_default(), &mem, Benchmark::Gcc, 4_000, 7);
    let b = run_dkip(&DkipConfig::paper_default(), &mem, Benchmark::Gcc, 4_000, 7);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    let t1: Vec<_> = TraceGenerator::new(Benchmark::Gcc, 7).take(1_000).collect();
    let t2: Vec<_> = TraceGenerator::new(Benchmark::Gcc, 7).take(1_000).collect();
    assert_eq!(t1, t2);
}

#[test]
fn different_seeds_produce_different_but_similar_behaviour() {
    let mem = MemoryHierarchyConfig::mem_400();
    let a = run_dkip(
        &DkipConfig::paper_default(),
        &mem,
        Benchmark::Equake,
        BUDGET,
        1,
    );
    let b = run_dkip(
        &DkipConfig::paper_default(),
        &mem,
        Benchmark::Equake,
        BUDGET,
        2,
    );
    assert_ne!(
        a.cycles, b.cycles,
        "different seeds should not be cycle-identical"
    );
    let ratio = a.ipc() / b.ipc();
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "seeds change details, not the regime: {ratio}"
    );
}
