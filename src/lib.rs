//! Facade crate for the Decoupled KILO-Instruction Processor (D-KIP)
//! reproduction.
//!
//! This crate re-exports every workspace member under a stable set of module
//! names so that downstream users (and the examples and integration tests in
//! this repository) only need a single dependency:
//!
//! * [`model`] — shared instruction/register/configuration/statistics types,
//! * [`trace`] — synthetic SPEC2000-like workload generators,
//! * [`riscv`] — the execution-driven RV64IM frontend (assembler, emulator,
//!   embedded kernels) feeding real instruction streams to every core,
//! * [`mem`] — the two-level cache hierarchy and main-memory model,
//! * [`bpred`] — branch predictors (perceptron, gshare, bimodal),
//! * [`ooo`] — the R10000-style out-of-order baseline core,
//! * [`kilo`] — the traditional KILO-instruction processor baseline,
//! * [`dkip`] — the Decoupled KILO-Instruction Processor itself,
//! * [`sim`] — the experiment harness that regenerates every table and
//!   figure of the paper.
//!
//! # Quickstart
//!
//! ```
//! use dkip::model::config::{DkipConfig, MemoryHierarchyConfig};
//! use dkip::trace::spec::Benchmark;
//! use dkip::sim::run_dkip;
//!
//! // Simulate a short slice of a SpecFP-like workload on the default D-KIP.
//! let stats = run_dkip(
//!     &DkipConfig::paper_default(),
//!     &MemoryHierarchyConfig::mem_400(),
//!     Benchmark::Swim,
//!     20_000,
//!     1,
//! );
//! assert!(stats.ipc() > 0.0);
//! ```

#![warn(missing_docs)]

pub use dkip_bpred as bpred;
pub use dkip_core as dkip;
pub use dkip_kilo as kilo;
pub use dkip_mem as mem;
pub use dkip_model as model;
pub use dkip_ooo as ooo;
pub use dkip_riscv as riscv;
pub use dkip_sim as sim;
pub use dkip_trace as trace;
