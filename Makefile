# Convenience targets wrapping the tier-1 verify and the paper artefacts.
# Mirrored by .github/workflows/ci.yml.

FIG_BINS = table1 table2_3 fig01_window_specint fig02_window_specfp \
           fig03_issue_histogram fig09_comparison fig10_scheduler_sweep \
           fig11_cache_sweep_specint fig12_cache_sweep_specfp \
           fig13_llib_occupancy_specint fig14_llib_occupancy_specfp \
           fig_riscv_ipc

## Scratch directory for the trace-smoke artefacts.
TRACE_SMOKE_DIR = target/trace-smoke

## Scratch directory for the cache-check store and outputs.
CACHE_CHECK_DIR = target/cache-check

## Scratch directory for the chaos-check stores and outputs.
CHAOS_CHECK_DIR = target/chaos-check

.PHONY: build test doc verify lint bench bench-figures golden bless riscv perf perf-smoke trace-smoke cache-check chaos-check fuzz fuzz-smoke sample-check clean

build:
	cargo build --release

test:
	cargo test -q

## Tier-1 verify: exactly what CI and the ROADMAP run.
verify:
	cargo build --release && cargo test -q

doc:
	cargo doc --no-deps

## Static checks, exactly as the CI lint job runs them.
lint:
	cargo clippy --all-targets -- -D warnings
	cargo fmt --check

## Golden-stats regression checks: compare fresh runs against the pinned
## snapshots in tests/golden/ (incl. the RISC-V kernel sweep), single- and
## multi-threaded (see EXPERIMENTS.md).
## perf_invariance and skip_equivalence hard-pin their own 1- and 8-thread
## runners (they ignore DKIP_THREADS), so one invocation covers both thread
## counts; skip_equivalence additionally runs every suite with the
## event-driven clock on and off (DKIP_NO_SKIP) and requires bit-identical
## statistics.
golden:
	DKIP_THREADS=1 cargo test -q -p dkip --test golden_stats --test determinism --test riscv_frontend --test perf_invariance --test skip_equivalence
	DKIP_THREADS=8 cargo test -q -p dkip --test golden_stats --test determinism --test riscv_frontend

## Regenerate the golden snapshots after an *intended* behavioural change,
## then review `git diff tests/golden/`.
bless:
	DKIP_BLESS=1 cargo test -q -p dkip --test golden_stats

## Run every RV64IM kernel to completion on all three core families and
## print the per-kernel IPC table.
riscv: build
	./target/release/fig_riscv_ipc

## Simulator-throughput benches (criterion shim). Set CRITERION_JSON=path
## (or pass `-- --save-baseline NAME`) to persist the measurements as JSON.
bench:
	cargo bench -p dkip-bench

## Simulator-throughput harness: times every core family on Spec and RISC-V
## workloads and writes BENCH_sim_throughput.json (MIPS + cycles/sec per
## family/workload). See EXPERIMENTS.md "Measuring simulator throughput".
perf: build
	./target/release/perf

## Reduced-budget throughput check against the committed baseline
## (ci/perf_baseline.json): fails on a >30% per-family regression, if the
## D-KIP family drops below the absolute MIPS floor, or if the disabled-probe
## host-calibrated figure regresses >2% (the telemetry_overhead= gate).
## Mirrored by the CI perf-smoke job.
perf-smoke: build
	./target/release/perf budget=40000 samples=5 check=ci/perf_baseline.json tolerance=0.30 floor=0.25 telemetry_overhead=ci/perf_baseline.json

## Telemetry smoke: one kernel per core family with both backends attached
## (interval metrics + O3PipeView pipeline trace), validated by trace_check
## (7-line block schema, monotone per-µop stage timestamps, metrics column
## schema, monotone cycle/committed counters), plus a repeat D-KIP run that
## must be byte-identical. Mirrored by the CI trace-smoke job.
trace-smoke: build
	rm -rf $(TRACE_SMOKE_DIR) && mkdir -p $(TRACE_SMOKE_DIR)
	for fam in baseline kilo dkip; do \
		./target/release/fig_timeseries $$fam riscv:matmul/8 \
			metrics=$(TRACE_SMOKE_DIR)/$$fam.csv:500 \
			trace=$(TRACE_SMOKE_DIR)/$$fam.trace:20000 || exit 1; \
		./target/release/trace_check $(TRACE_SMOKE_DIR)/$$fam.trace \
			metrics=$(TRACE_SMOKE_DIR)/$$fam.csv || exit 1; \
	done
	./target/release/fig_timeseries dkip riscv:matmul/8 \
		metrics=$(TRACE_SMOKE_DIR)/dkip-again.csv:500 \
		trace=$(TRACE_SMOKE_DIR)/dkip-again.trace:20000
	cmp $(TRACE_SMOKE_DIR)/dkip.csv $(TRACE_SMOKE_DIR)/dkip-again.csv
	cmp $(TRACE_SMOKE_DIR)/dkip.trace $(TRACE_SMOKE_DIR)/dkip-again.trace
	@echo "trace-smoke: telemetry validates and is repeat-run byte-identical"

## Result-store acceptance gates, mirrored by the CI cache-check job:
##  1. full golden matrix ("all") cold then warm against one cache=DIR —
##     the warm run must recompute zero jobs (expect=warm exits 1
##     otherwise) and emit byte-identical output (cmp);
##  2. same contract for one figure binary (fig09);
##  3. a salt perturbation (DKIP_CACHE_SALT) and a budget perturbation must
##     both miss the populated store (expect=cold);
##  4. dkip-sim serve must answer a repeated sweep query from the cache
##     (hits>0, misses=0 on the repeat) with byte-identical bodies.
cache-check: build
	rm -rf $(CACHE_CHECK_DIR) && mkdir -p $(CACHE_CHECK_DIR)
	./target/release/dkip-sim sweep all cache=$(CACHE_CHECK_DIR)/store expect=cold \
		> $(CACHE_CHECK_DIR)/sweep-cold.txt
	./target/release/dkip-sim sweep all cache=$(CACHE_CHECK_DIR)/store expect=warm \
		> $(CACHE_CHECK_DIR)/sweep-warm.txt
	cmp $(CACHE_CHECK_DIR)/sweep-cold.txt $(CACHE_CHECK_DIR)/sweep-warm.txt
	./target/release/fig09_comparison 2000 cache=$(CACHE_CHECK_DIR)/store expect=cold \
		> $(CACHE_CHECK_DIR)/fig09-cold.txt
	./target/release/fig09_comparison 2000 cache=$(CACHE_CHECK_DIR)/store expect=warm \
		> $(CACHE_CHECK_DIR)/fig09-warm.txt
	cmp $(CACHE_CHECK_DIR)/fig09-cold.txt $(CACHE_CHECK_DIR)/fig09-warm.txt
	DKIP_CACHE_SALT=cache-check-perturbation ./target/release/dkip-sim sweep kilo \
		cache=$(CACHE_CHECK_DIR)/store expect=cold > /dev/null
	./target/release/dkip-sim sweep kilo budget=3999 \
		cache=$(CACHE_CHECK_DIR)/store expect=cold > /dev/null
	./target/release/dkip-sim serve socket=$(CACHE_CHECK_DIR)/serve.sock \
		cache=$(CACHE_CHECK_DIR)/store & \
	SERVE_PID=$$!; \
	for i in $$(seq 1 50); do [ -S $(CACHE_CHECK_DIR)/serve.sock ] && break; sleep 0.1; done; \
	./target/release/dkip-sim query socket=$(CACHE_CHECK_DIR)/serve.sock suite all \
		> $(CACHE_CHECK_DIR)/query1.txt 2> $(CACHE_CHECK_DIR)/query1.status; \
	./target/release/dkip-sim query socket=$(CACHE_CHECK_DIR)/serve.sock suite all \
		> $(CACHE_CHECK_DIR)/query2.txt 2> $(CACHE_CHECK_DIR)/query2.status; \
	kill $$SERVE_PID; \
	grep -q " misses=0" $(CACHE_CHECK_DIR)/query2.status || \
		{ echo "serve recomputed jobs on a repeated query:"; cat $(CACHE_CHECK_DIR)/query2.status; exit 1; }
	cmp $(CACHE_CHECK_DIR)/query1.txt $(CACHE_CHECK_DIR)/query2.txt
	cmp $(CACHE_CHECK_DIR)/query1.txt $(CACHE_CHECK_DIR)/sweep-cold.txt
	@echo "cache-check: warm runs recompute nothing and are byte-identical; perturbations miss; serve answers from cache"

## Chaos campaigns, mirrored by the CI chaos-check job. Fault points are
## armed per process via DKIP_FAULTS=<point>:<rate>:<seed> (see
## crates/sim/src/chaos.rs), so each CLI invocation below is one sealed
## campaign. The gates:
##  1. the chaos/service/store integration suites in release mode;
##  2. injected job panics: the sweep survives, records the failures,
##     exits 1 with a summary — and a disarmed re-run over the same store
##     heals to a fully green, fully warm, byte-identical sweep;
##  3. the same panic campaign with retries=1 absorbs the firstK faults
##     in-process and exits green, byte-identical;
##  4. a store whose every write fails degrades to uncached (exit 0,
##     byte-identical stdout, nothing cached — expect=cold proves it);
##  5. a store whose every read fails recomputes everything byte-identically;
##  6. armed store/metrics faults must not perturb paths that never consult
##     them: golden snapshots and the fuzz-corpus replay stay green.
chaos-check: build
	rm -rf $(CHAOS_CHECK_DIR) && mkdir -p $(CHAOS_CHECK_DIR)
	cargo test -q --release -p dkip --test chaos --test service_socket --test store
	./target/release/dkip-sim sweep kilo cache=$(CHAOS_CHECK_DIR)/ref expect=cold \
		> $(CHAOS_CHECK_DIR)/ref.txt
	DKIP_FAULTS=job.panic:first2:7 ./target/release/dkip-sim sweep kilo retries=0 \
		cache=$(CHAOS_CHECK_DIR)/heal > $(CHAOS_CHECK_DIR)/campaign.txt \
		2> $(CHAOS_CHECK_DIR)/campaign.status; \
	test $$? -eq 1 || { echo "chaos-check: the panic campaign must exit 1"; exit 1; }
	grep -q "# sweep failure:" $(CHAOS_CHECK_DIR)/campaign.status || \
		{ echo "chaos-check: no failure summary:"; cat $(CHAOS_CHECK_DIR)/campaign.status; exit 1; }
	./target/release/dkip-sim sweep kilo cache=$(CHAOS_CHECK_DIR)/heal \
		> $(CHAOS_CHECK_DIR)/healed.txt
	cmp $(CHAOS_CHECK_DIR)/healed.txt $(CHAOS_CHECK_DIR)/ref.txt
	./target/release/dkip-sim sweep kilo cache=$(CHAOS_CHECK_DIR)/heal expect=warm \
		> $(CHAOS_CHECK_DIR)/warm.txt
	cmp $(CHAOS_CHECK_DIR)/warm.txt $(CHAOS_CHECK_DIR)/ref.txt
	DKIP_FAULTS=job.panic:first2:7 ./target/release/dkip-sim sweep kilo retries=1 \
		> $(CHAOS_CHECK_DIR)/retried.txt
	cmp $(CHAOS_CHECK_DIR)/retried.txt $(CHAOS_CHECK_DIR)/ref.txt
	DKIP_FAULTS=store.write:1:11 ./target/release/dkip-sim sweep kilo \
		cache=$(CHAOS_CHECK_DIR)/dead-store > $(CHAOS_CHECK_DIR)/degraded.txt
	cmp $(CHAOS_CHECK_DIR)/degraded.txt $(CHAOS_CHECK_DIR)/ref.txt
	./target/release/dkip-sim sweep kilo cache=$(CHAOS_CHECK_DIR)/dead-store expect=cold \
		> /dev/null
	DKIP_FAULTS=store.read:1:13 ./target/release/dkip-sim sweep kilo \
		cache=$(CHAOS_CHECK_DIR)/ref > $(CHAOS_CHECK_DIR)/readfault.txt
	cmp $(CHAOS_CHECK_DIR)/readfault.txt $(CHAOS_CHECK_DIR)/ref.txt
	DKIP_FAULTS=store.write:1:3,metrics.write:1:5 DKIP_FUZZ_CASES=50 \
		cargo test -q --release -p dkip --test golden_stats --test corpus_replay
	@echo "chaos-check: faults isolate, degrade caching not correctness, and heal green"

## Sampled-simulation gates: checkpoint round-trips must be bit-identical
## and the sampled IPC estimator must stay inside its error bands (3%
## suite-mean, 10% per-job) against exact simulation on all four golden
## matrices. Release mode: the accuracy suite simulates ~100k-1M
## instructions per job twice. Mirrored by the CI sample-check job.
sample-check:
	cargo test -q --release -p dkip --test checkpoint_roundtrip --test sampled_accuracy

## Differential-fuzz smoke: 200 random RV64IM programs through the emulator
## oracle and all three core families, plus the checked-in corpus replay.
## Mirrored by the CI fuzz-smoke job. Deterministic: the proptest shim seeds
## from the property name, so every run draws the same 200 programs.
fuzz-smoke:
	DKIP_FUZZ_CASES=200 cargo test -q -p dkip --test fuzz_differential --test corpus_replay

## Full fuzz campaign: 1000 programs in release mode (the acceptance bar;
## see EXPERIMENTS.md "Differential fuzzing" for triage and minimization).
fuzz:
	DKIP_FUZZ_CASES=1000 cargo test -q --release -p dkip --test fuzz_differential --test corpus_replay

## Regenerate every table/figure of the paper on stdout.
bench-figures: build
	@for b in $(FIG_BINS); do \
		echo "==== $$b ===="; \
		./target/release/$$b || exit 1; \
		echo; \
	done

clean:
	cargo clean
