# Convenience targets wrapping the tier-1 verify and the paper artefacts.
# Mirrored by .github/workflows/ci.yml.

FIG_BINS = table1 table2_3 fig01_window_specint fig02_window_specfp \
           fig03_issue_histogram fig09_comparison fig10_scheduler_sweep \
           fig11_cache_sweep_specint fig12_cache_sweep_specfp \
           fig13_llib_occupancy_specint fig14_llib_occupancy_specfp \
           fig_riscv_ipc

.PHONY: build test doc verify bench bench-figures golden bless riscv clean

build:
	cargo build --release

test:
	cargo test -q

## Tier-1 verify: exactly what CI and the ROADMAP run.
verify:
	cargo build --release && cargo test -q

doc:
	cargo doc --no-deps

## Golden-stats regression checks: compare fresh runs against the pinned
## snapshots in tests/golden/ (incl. the RISC-V kernel sweep), single- and
## multi-threaded (see EXPERIMENTS.md).
golden:
	DKIP_THREADS=1 cargo test -q -p dkip --test golden_stats --test determinism --test riscv_frontend
	DKIP_THREADS=8 cargo test -q -p dkip --test golden_stats --test determinism --test riscv_frontend

## Regenerate the golden snapshots after an *intended* behavioural change,
## then review `git diff tests/golden/`.
bless:
	DKIP_BLESS=1 cargo test -q -p dkip --test golden_stats

## Run every RV64IM kernel to completion on all three core families and
## print the per-kernel IPC table.
riscv: build
	./target/release/fig_riscv_ipc

## Simulator-throughput benches (criterion shim).
bench:
	cargo bench -p dkip-bench

## Regenerate every table/figure of the paper on stdout.
bench-figures: build
	@for b in $(FIG_BINS); do \
		echo "==== $$b ===="; \
		./target/release/$$b || exit 1; \
		echo; \
	done

clean:
	cargo clean
